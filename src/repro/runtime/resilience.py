"""Resilience primitives for the serving runtime.

The :class:`~repro.runtime.server.RuntimeServer` composes four
mechanisms from this module so a single node degrades instead of
failing (see ``docs/resilience.md`` for the full failure-mode
taxonomy):

* **Deadlines** — ``submit(deadline=...)`` requests past their deadline
  fail fast with :class:`DeadlineExceeded` at dequeue/batch-dispatch
  time instead of occupying a worker.
* **Admission control** — a bounded queue
  (:attr:`ResilienceConfig.max_queue`) sheds load under overload:
  ``"reject-new"`` refuses the incoming submit, ``"drop-oldest"``
  evicts the longest-queued request and fails its future.
* **Retries** — :class:`RetryPolicy`: transient failures
  (:class:`~repro.errors.TransientError`, ``OSError``) retry with
  seeded exponential backoff plus deterministic jitter, so chaos soaks
  replay bit-identically.
* **Circuit breakers** — :class:`CircuitBreaker` per site
  (closed → open → half-open): repeated failures stop hitting the
  broken component. A :class:`ResilientTier` wraps the disk tier so a
  tripped ``disk`` breaker serves memory-only; a tripped per-kernel
  ``compile`` breaker serves the generic bucket (for specialized
  requests) or fails fast with :class:`BreakerOpen`.

All hooks follow the zero-cost-when-off discipline: with the default
configuration and no installed :mod:`~repro.runtime.faults` plan the
hot path pays a handful of ``is None`` / attribute checks, which the
launch-overhead CI gate keeps honest.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.compiler.cache import SecondTier
from repro.errors import CypressError, TransientError
from repro.runtime import faults

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerOpen",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ResilienceConfig",
    "ResilientTier",
    "RetryPolicy",
    "SHED_DROP_OLDEST",
    "SHED_POLICIES",
    "SHED_REJECT_NEW",
    "call_with_retry",
    "is_transient",
]

#: Breaker states (also the values of ``RuntimeStats.breaker_states``).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Load-shedding policies accepted by :attr:`ResilienceConfig.shed_policy`.
SHED_REJECT_NEW = "reject-new"
SHED_DROP_OLDEST = "drop-oldest"
SHED_POLICIES = (SHED_REJECT_NEW, SHED_DROP_OLDEST)


class DeadlineExceeded(CypressError):
    """A request's deadline passed before a worker could serve it."""


class BreakerOpen(CypressError):
    """An operation was refused because its circuit breaker is open.

    Raised instead of attempting the guarded operation; the site name
    says which component is considered broken.
    """

    def __init__(self, site: str, message: Optional[str] = None) -> None:
        self.site = site
        super().__init__(
            message
            or f"circuit breaker {site!r} is open; failing fast"
        )


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying.

    :class:`~repro.errors.TransientError` (which covers injected
    faults) and ``OSError`` (flaky disk/IPC) are transient; everything
    else — compile errors, shape errors, plain bugs — is deterministic
    and retrying it would only repeat the failure.
    """
    return isinstance(error, (TransientError, OSError))


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with deterministic jitter.

    ``max_attempts`` bounds the *total* tries (1 = no retries). The
    delay before retry ``n`` (1-based) is ``base_delay_s * 2**(n-1)``
    capped at ``max_delay_s``, scaled by a jitter factor drawn from
    ``random.Random((seed, salt, n))`` — stateless per draw, so
    concurrent retriers never perturb each other's schedules and a
    rerun with the same seed backs off identically.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.001
    max_delay_s: float = 0.05
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CypressError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise CypressError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay_s(self, retry: int, salt: str = "") -> float:
        """Backoff before 1-based retry number ``retry`` for ``salt``."""
        raw = min(
            self.base_delay_s * (2 ** max(retry - 1, 0)),
            self.max_delay_s,
        )
        if self.jitter == 0.0:
            return raw
        # A string seed hashes deterministically across processes.
        draw = random.Random(f"{self.seed}:{salt}:{retry}").random()
        return raw * (1.0 - self.jitter * draw)


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    *,
    salt: str = "",
    classify: Callable[[BaseException], bool] = is_transient,
    on_retry: Optional[Callable[[BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn`` with up to ``policy.max_attempts`` tries.

    Only failures ``classify`` deems transient are retried; the last
    attempt's exception propagates. ``on_retry`` observes every
    transient failure the machinery absorbs (including the final one),
    which is what the ``retries`` telemetry counter records.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except Exception as error:
            if not classify(error):
                raise
            if on_retry is not None:
                on_retry(error)
            if attempt >= policy.max_attempts:
                raise
            sleep(policy.delay_s(attempt, salt))
            attempt += 1


class CircuitBreaker:
    """A per-site closed → open → half-open breaker.

    ``failure_threshold`` *consecutive* failures trip the breaker open;
    while open, :meth:`allow` refuses every caller for ``cooldown_s``.
    After the cooldown one probe is admitted (half-open): its success
    closes the breaker, its failure re-opens it for another cooldown.
    Thread-safe; the clock is injectable for deterministic tests.

    Args:
        site: the guarded component's name (``"disk"``,
            ``"compile:gemm"``); labels telemetry and metrics.
        failure_threshold: consecutive failures before opening.
        cooldown_s: open duration before admitting a probe.
        clock: monotonic time source (tests inject a fake).
        on_transition: ``callback(site, old_state, new_state)`` invoked
            outside the breaker lock on every state change — the server
            uses it to emit tracer spans and count trips.
    """

    def __init__(
        self,
        site: str,
        failure_threshold: int = 5,
        cooldown_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise CypressError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.site = site
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open``, or ``half-open``."""
        with self._lock:
            return self._state

    def _transition(self, new_state: str) -> Optional[tuple]:
        # Caller holds the lock; returns the (old, new) pair to report.
        old = self._state
        if old == new_state:
            return None
        self._state = new_state
        return (old, new_state)

    def _notify(self, change: Optional[tuple]) -> None:
        if change is not None and self.on_transition is not None:
            self.on_transition(self.site, change[0], change[1])

    def allow(self) -> bool:
        """Whether the guarded operation may run right now.

        Open breakers refuse until the cooldown elapses, then admit
        exactly one half-open probe at a time.
        """
        change = None
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                change = self._transition(BREAKER_HALF_OPEN)
                self._probing = True
                allowed = True
            else:  # half-open: one probe in flight at a time
                if self._probing:
                    allowed = False
                else:
                    self._probing = True
                    allowed = True
        self._notify(change)
        return allowed

    def record_success(self) -> None:
        """Report a guarded operation that succeeded."""
        with self._lock:
            self._failures = 0
            self._probing = False
            change = self._transition(BREAKER_CLOSED)
        self._notify(change)

    def record_failure(self) -> None:
        """Report a guarded operation that failed; may trip the
        breaker open."""
        with self._lock:
            self._failures += 1
            self._probing = False
            change = None
            if self._state == BREAKER_HALF_OPEN or (
                self._state == BREAKER_CLOSED
                and self._failures >= self.failure_threshold
            ):
                change = self._transition(BREAKER_OPEN)
                self._opened_at = self._clock()
                self.trips += 1
        self._notify(change)


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the server's resilience layer.

    The defaults preserve historical behavior — unbounded queue, no
    deadline unless a submit carries one — while arming retries and
    breakers with conservative thresholds, so every server is
    self-healing out of the box.

    Attributes:
        max_queue: queue-depth bound; ``None`` leaves the queue
            unbounded (the historical behavior).
        shed_policy: what to do when the bound is hit —
            ``"reject-new"`` raises at submit, ``"drop-oldest"`` evicts
            the longest-queued request (its future fails) to admit the
            new one.
        retry: backoff policy for transient compile/disk/execute
            failures.
        breaker_threshold: consecutive failures before a breaker opens.
        breaker_cooldown_s: open duration before a half-open probe.
    """

    max_queue: Optional[int] = None
    shed_policy: str = SHED_REJECT_NEW
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_queue is not None and self.max_queue < 1:
            raise CypressError(
                f"max_queue must be >= 1 or None, got {self.max_queue}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise CypressError(
                f"shed_policy must be one of {SHED_POLICIES}, got "
                f"{self.shed_policy!r}"
            )


class ResilientTier(SecondTier):
    """Retry + circuit-breaker armor around a persistent cache tier.

    Wraps a :class:`~repro.runtime.diskcache.DiskCacheTier` (or any
    :class:`~repro.compiler.cache.SecondTier`) while preserving its
    contract — ``load``/``store`` never raise into the compile path:

    * the ``disk.load`` / ``disk.store`` fault sites fire here, so
      injected disk failures exercise exactly this armor;
    * transient failures retry per the :class:`RetryPolicy`;
    * exhausted retries count a breaker failure; an **open breaker
      skips the tier entirely** (memory-only degraded mode) until the
      cooldown admits a probe.

    Every other attribute (``contains``, ``keys``, ``stats``, ...)
    delegates to the wrapped tier, so the server can expose one object
    as its ``disk_tier``.
    """

    def __init__(
        self,
        tier: Any,
        *,
        breaker: Optional[CircuitBreaker] = None,
        retry: Optional[RetryPolicy] = None,
        on_retry: Optional[Callable[[BaseException], None]] = None,
        on_degraded: Optional[Callable[[str], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.tier = tier
        self.breaker = breaker
        self.retry = retry or RetryPolicy()
        self.on_retry = on_retry
        self.on_degraded = on_degraded
        self._sleep = sleep

    def _guarded(self, site: str, key: str, fn: Callable[[], Any]) -> Any:
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            if self.on_degraded is not None:
                self.on_degraded(site)
            return None
        plan = faults.ACTIVE

        def attempt() -> Any:
            if plan is not None:
                plan.check(site, key[:16])
            return fn()

        try:
            value = call_with_retry(
                attempt,
                self.retry,
                salt=f"{site}:{key}",
                on_retry=self.on_retry,
                sleep=self._sleep,
            )
        except Exception:
            # Transient failures exhausted retries, or the tier broke
            # its own never-raise contract: count it against the
            # breaker and degrade to a miss either way.
            if breaker is not None:
                breaker.record_failure()
            return None
        if breaker is not None:
            breaker.record_success()
        return value

    def load(self, key: str) -> Optional[Any]:
        """Armored lookup: retries transient failures, returns ``None``
        (memory-only degradation) when they exhaust or the breaker is
        open. Never raises."""
        return self._guarded("disk.load", key, lambda: self.tier.load(key))

    def store(self, key: str, kernel: Any) -> None:
        """Armored write-through; a failed store is dropped (the entry
        is simply not persisted). Never raises."""
        self._guarded(
            "disk.store", key, lambda: self.tier.store(key, kernel)
        )

    def __getattr__(self, name: str) -> Any:
        # Everything the armor does not intercept (contains, keys,
        # stats, path, clear, ...) belongs to the wrapped tier.
        return getattr(self.tier, name)

    def __len__(self) -> int:
        return len(self.tier)
