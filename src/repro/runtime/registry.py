"""The kernel registry: stable names -> builders + shape signatures.

A :class:`KernelRegistry` maps a stable serving name (``"gemm"``,
``"flash_attention2"``) to a :class:`RegisteredKernel`: the ``build_*``
function from the kernel zoo, the ordered shape dimensions its requests
must provide, default mapping parameters, the :class:`BucketPolicy`
that rounds request shapes, and — for warm-up autotuning — a mapping
search space plus an adapter translating search-space candidates into
the builder's keyword arguments (attention builders spell their tiles
``q_tile``/``kv_tile`` rather than ``tile_m``/``tile_n``).

:func:`default_registry` returns a registry pre-populated with the
paper's whole kernel zoo; servers can also register custom builders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import CypressError
from repro.kernels import KERNEL_BUILDERS, KernelBuild
from repro.machine.machine import MachineModel
from repro.runtime.bucketing import Bucket, BucketPolicy
from repro.tuner import MappingSearchSpace

#: candidate dict from a search space -> builder keyword arguments
TuneAdapter = Callable[[Dict[str, Any]], Dict[str, Any]]


def attention_tune_adapter(candidate: Dict[str, Any]) -> Dict[str, Any]:
    """Map GEMM-style search axes onto attention builder knobs."""
    return {
        "q_tile": candidate["tile_m"],
        "kv_tile": candidate["tile_n"],
        "wgs": candidate["wgs"],
        "pipeline": candidate["pipeline"],
        "warpspecialize": candidate["warpspecialize"],
    }


@dataclass
class RegisteredKernel:
    """One servable kernel family.

    Attributes:
        name: the stable serving name.
        builder: ``build_*(machine, <dims...>, **params) -> KernelBuild``.
        dims: ordered shape-dimension names requests must provide.
        policy: rounds request shapes to buckets.
        defaults: mapping parameters applied to every build.
        search_space: candidates for ``RuntimeServer.warm(tune=True)``.
        tune_adapter: translates a candidate dict to builder kwargs
            (identity when ``None``).
        specialize_align: per-dimension granule for exact-shape
            specialization — each promoted shape is rounded up to a
            multiple of its granule so the *default* build's partitions
            divide evenly (dimensions not listed use granule 1).
            ``None`` disables specialization for this kernel: the
            :class:`~repro.runtime.specialize.ShapeSpecializer` has no
            safe alignment to build at, so it never promotes it.
        flops_fn: ``shape dict -> useful FLOPs`` estimator used for
            padded-waste accounting; the product of the extents when
            ``None`` (exact for volume-proportional kernels).
    """

    name: str
    builder: Callable[..., KernelBuild]
    dims: Tuple[str, ...]
    policy: BucketPolicy
    defaults: Dict[str, Any] = field(default_factory=dict)
    search_space: Optional[MappingSearchSpace] = None
    tune_adapter: Optional[TuneAdapter] = None
    specialize_align: Optional[Dict[str, int]] = None
    flops_fn: Optional[Callable[[Dict[str, int]], float]] = None

    def bucket(self, shape) -> Bucket:
        """Round a request shape with this kernel's policy."""
        return self.policy.bucket(shape, self.dims)

    def exact_bucket(self, shape: Mapping[str, int]) -> Bucket:
        """The *unrounded* request shape as a :class:`Bucket` (dims in
        registration order) — the specializer's guard key."""
        return Bucket(tuple((name, shape[name]) for name in self.dims))

    def flops(self, shape: Mapping[str, int]) -> float:
        """Estimated useful FLOPs of one request at ``shape``.

        Uses the registered ``flops_fn`` when present, else the product
        of the shape extents — a relative work proxy that is exact for
        kernels whose FLOPs are volume-proportional (the GEMM family).
        """
        if self.flops_fn is not None:
            return float(self.flops_fn(dict(shape)))
        total = 1.0
        for extent in shape.values():
            total *= extent
        return total

    def build(
        self,
        machine: MachineModel,
        bucket: Bucket,
        params: Optional[Dict[str, Any]] = None,
    ) -> KernelBuild:
        """Instantiate the builder at a bucket shape."""
        kwargs = dict(self.defaults)
        if params:
            kwargs.update(params)
        return self.builder(machine, **bucket.as_dict(), **kwargs)


class KernelRegistry:
    """Name -> :class:`RegisteredKernel`, the server's dispatch table."""

    def __init__(self) -> None:
        self._kernels: Dict[str, RegisteredKernel] = {}

    def register(
        self,
        name: str,
        builder: Callable[..., KernelBuild],
        dims: Tuple[str, ...],
        *,
        policy: Optional[BucketPolicy] = None,
        defaults: Optional[Dict[str, Any]] = None,
        search_space: Optional[MappingSearchSpace] = None,
        tune_adapter: Optional[TuneAdapter] = None,
        specialize_align: Optional[Mapping[str, int]] = None,
        flops: Optional[Callable[[Dict[str, int]], float]] = None,
    ) -> RegisteredKernel:
        """Register a servable kernel family.

        Args:
            name: stable serving name (unique).
            builder: ``build_*(machine, <dims...>, **params)``.
            dims: ordered shape-dimension names requests must provide.
            policy: bucket-rounding policy (defaults to pow2 floors).
            defaults: mapping parameters applied to every build.
            search_space: candidates for ``warm(tune=True)``.
            tune_adapter: candidate dict -> builder kwargs translator.
            specialize_align: per-dimension alignment granule enabling
                exact-shape specialization (``None`` opts this kernel
                out of the specializer).
            flops: ``shape dict -> useful FLOPs`` estimator for
                padded-waste accounting.

        Returns:
            The stored :class:`RegisteredKernel`.

        Raises:
            CypressError: when ``name`` is already registered.
        """
        if name in self._kernels:
            raise CypressError(f"kernel {name!r} is already registered")
        entry = RegisteredKernel(
            name=name,
            builder=builder,
            dims=tuple(dims),
            policy=policy or BucketPolicy(ladders={}),
            defaults=dict(defaults or {}),
            search_space=search_space,
            tune_adapter=tune_adapter,
            specialize_align=(
                dict(specialize_align) if specialize_align else None
            ),
            flops_fn=flops,
        )
        self._kernels[name] = entry
        return entry

    def get(self, name: str) -> RegisteredKernel:
        """Look up a kernel by serving name.

        Raises:
            CypressError: unknown name (the message lists known ones).
        """
        try:
            return self._kernels[name]
        except KeyError:
            known = ", ".join(sorted(self._kernels)) or "<none>"
            raise CypressError(
                f"unknown kernel {name!r}; registered kernels: {known}"
            ) from None

    def names(self):
        """All registered serving names, sorted."""
        return sorted(self._kernels)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def __len__(self) -> int:
        return len(self._kernels)


#: Output-tile ladders for the GEMM family (matmul extents).
_GEMM_MN = (256, 512, 1024, 2048, 4096, 8192)
_GEMM_K = (128, 256, 512, 1024, 2048, 4096)
_BATCH = (1, 2, 4, 8, 16, 32, 64)
_HEADS = (1, 2, 4, 8, 16, 32, 64, 128)
_SEQ = (256, 512, 1024, 2048, 4096, 8192, 16384)


def _gemm_space() -> MappingSearchSpace:
    return MappingSearchSpace(
        tiles=((256, 256), (128, 256), (128, 128)),
        pipeline_depths=(1, 2, 3),
        warpgroups=(1, 2),
        warpspecialize=(True, False),
    )


def _attention_space() -> MappingSearchSpace:
    return MappingSearchSpace(
        tiles=((128, 128), (128, 256)),
        pipeline_depths=(1, 2, 3),
        warpgroups=(1, 2),
        warpspecialize=(True, False),
    )


#: Exact-shape specialization granules: multiples of the default build
#: tiles (gemm family tiles 256x256x64, attention q/kv tiles 128), so a
#: promoted shape's partitions always divide evenly.
_GEMM_ALIGN = {"m": 256, "n": 256, "k": 64}
_ATTN_ALIGN = {"heads": 1, "seq": 128, "head_dim": 128}


def _gemm_flops(shape: Dict[str, int]) -> float:
    return 2.0 * shape["m"] * shape["n"] * shape["k"]


def _batched_gemm_flops(shape: Dict[str, int]) -> float:
    return 2.0 * shape["batch"] * shape["m"] * shape["n"] * shape["k"]


def _attention_flops(shape: Dict[str, int]) -> float:
    return 4.0 * shape["heads"] * shape["seq"] ** 2 * shape["head_dim"]


def default_registry() -> KernelRegistry:
    """A registry serving the paper's whole kernel zoo."""
    registry = KernelRegistry()
    gemm_policy = BucketPolicy(ladders={"m": _GEMM_MN, "n": _GEMM_MN,
                                        "k": _GEMM_K})
    attn_policy = BucketPolicy(
        ladders={"heads": _HEADS, "seq": _SEQ, "head_dim": (128,)}
    )
    for name in ("gemm", "dual_gemm", "gemm_reduction"):
        registry.register(
            name,
            KERNEL_BUILDERS[name],
            ("m", "n", "k"),
            policy=gemm_policy,
            search_space=_gemm_space(),
            specialize_align=_GEMM_ALIGN,
            flops=_gemm_flops,
        )
    registry.register(
        "batched_gemm",
        KERNEL_BUILDERS["batched_gemm"],
        ("batch", "m", "n", "k"),
        policy=BucketPolicy(
            ladders={"batch": _BATCH, "m": _GEMM_MN, "n": _GEMM_MN,
                     "k": _GEMM_K}
        ),
        search_space=_gemm_space(),
        specialize_align={"batch": 1, **_GEMM_ALIGN},
        flops=_batched_gemm_flops,
    )
    for name in ("flash_attention2", "flash_attention3"):
        registry.register(
            name,
            KERNEL_BUILDERS[name],
            ("heads", "seq", "head_dim"),
            policy=attn_policy,
            search_space=_attention_space(),
            tune_adapter=attention_tune_adapter,
            specialize_align=_ATTN_ALIGN,
            flops=_attention_flops,
        )
    return registry
