"""Continuous speculative compilation behind the serving runtime.

A :class:`Speculator` is a background thread owned by a
:class:`~repro.runtime.server.RuntimeServer`. It watches the server's
per-``(kernel, bucket)`` traffic (recorded by the telemetry collector
at submit time), guesses which buckets shifting traffic will need next
— the observed buckets themselves plus their :meth:`~repro.runtime.
bucketing.BucketPolicy.neighbors` one ladder rung above and below —
and precompiles them through :func:`repro.api.compile_many` while the
request queue is idle. This is the tiering loop of background JITs
(count hits, compile specializations off the hot path while the
interpreter keeps serving) applied to shape buckets: ``warm()`` becomes
a continuous process instead of a one-shot call.

Speculative kernels land in the ordinary process-wide compile cache
(and the server's :class:`~repro.runtime.diskcache.DiskCacheTier`, when
attached), built from the *exact* build the server would produce for
the bucket — same registered defaults, same pinned tuned parameters,
same compile options — so a speculation hit is indistinguishable from a
``warm()`` hit: the first real request in a precompiled bucket is
served from the memory tier with zero passes executed, and its results
are bit-identical to what an on-demand compile would have produced.

With ``tune=True`` the speculator additionally walks the kernel's
mapping search space through the analytic cost model
(:func:`repro.tuner.rank_candidates` — stage 1 only, no simulation),
precompiles the ``top_k`` predicted-best mappings, and pins the winner
for buckets that have no tuned parameters yet.

Effectiveness lands in :class:`~repro.runtime.telemetry.RuntimeStats`:
``speculative_compiles`` (kernels built in the background),
``speculation_issued`` (buckets precompiled), ``speculation_hits``
(precompiled buckets that later received traffic), and the derived
``speculation_wasted`` / ``speculation_wasted_ratio``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.compiler.cache import compile_cache
from repro.compiler.pipeline import compile_key_for
from repro.kernels.common import KernelBuild
from repro.runtime.bucketing import Bucket
from repro.runtime.registry import RegisteredKernel

if TYPE_CHECKING:  # pragma: no cover - import cycle: server owns us
    from repro.runtime.server import RuntimeServer


class BackgroundLoop:
    """Shared machinery for the server's background threads.

    Both the :class:`Speculator` and the :class:`~repro.runtime.
    specialize.ShapeSpecializer` are daemon threads that wake every
    ``interval_s``, run one cycle of background work **only while the
    request queue is idle** (real traffic always wins the process), and
    must never take serving down — a cycle that raises is dropped,
    counted in ``errors``, and the next cycle retries. Subclasses
    implement :meth:`run_once`; tests drive it synchronously for
    determinism instead of waiting on the thread.

    The thread is additionally **supervised**: an exception escaping
    the cycle loop itself (the ``loop.cycle`` fault site of
    :mod:`~repro.runtime.faults` fires there, and real bugs land
    there too) no longer kills the thread silently for the life of the
    process. The supervisor counts it in ``crashes`` (and the server's
    ``loop_crashes`` telemetry), waits a capped doubling backoff, and
    restarts the loop — ``stop()`` always wins over a pending restart.
    """

    #: Thread name; subclasses override.
    thread_name = "repro-background"

    #: Run cycles only while the request queue is idle. Loops that
    #: *observe* serving rather than compete with it (the sampling
    #: profiler, the SLO monitor) override this to ``False`` — their
    #: whole point is to run while traffic flows.
    idle_only = True

    #: Crash-restart backoff: first wait, then doubled per consecutive
    #: crash up to the cap. A healthy cycle resets the ladder.
    restart_backoff_s = 0.01
    max_restart_backoff_s = 1.0

    def __init__(self, server: "RuntimeServer", interval_s: float) -> None:
        self.server = server
        self.interval_s = interval_s
        self.errors = 0
        self.crashes = 0
        self._cycles = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Spawn the background thread (idempotent)."""
        if self._thread is not None or self._stop.is_set():
            return
        self._thread = threading.Thread(
            target=self._run, name=self.thread_name, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Signal the thread to exit and join it (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _run(self) -> None:
        # The supervisor: restart a crashed cycle loop with capped
        # doubling backoff instead of dying silently.
        backoff = self.restart_backoff_s
        while not self._stop.is_set():
            cycles_before = self._cycles
            try:
                self._cycle_loop()
                return  # clean stop() — no restart
            except Exception:
                self.crashes += 1
                self.server.telemetry.record_loop_crash()
                if self._cycles > cycles_before:
                    backoff = self.restart_backoff_s  # it made progress
                if self._stop.wait(backoff):
                    return
                backoff = min(backoff * 2, self.max_restart_backoff_s)

    def _cycle_loop(self) -> None:
        from repro.runtime import faults

        while not self._stop.wait(self.interval_s):
            plan = faults.ACTIVE
            if plan is not None:
                # Outside the per-cycle try: an injected fault crashes
                # the loop body itself, exercising supervision.
                plan.check("loop.cycle", self.thread_name)
            try:
                if not self.idle_only or self.server.queue_depth == 0:
                    self.run_once()
            except Exception:
                # Background work must never take serving down; a cycle
                # that blows up is dropped and the next one retries.
                self.errors += 1
            self._cycles += 1

    def run_once(self) -> int:
        """One cycle of background work; returns work items done."""
        raise NotImplementedError


@dataclass(frozen=True)
class SpeculatorConfig:
    """Knobs of the background speculator.

    Attributes:
        interval_s: poll period between speculation cycles.
        max_compiles_per_cycle: background compile budget per cycle, so
            a burst of novel traffic cannot monopolize the process.
        neighbors: also precompile buckets one ladder rung above/below
            each observed bucket (the shifting-traffic guess); with
            ``False`` only observed buckets are kept warm.
        tune: walk the kernel's mapping search space analytically per
            candidate bucket, precompile the ``top_k`` predicted-best
            mappings, and pin the winner for buckets with no tuned
            parameters yet (stage-1-only tuning — no simulation).
        top_k: mappings precompiled per bucket when ``tune=True``.
        max_workers: thread-pool width for background ``compile_many``.
    """

    interval_s: float = 0.02
    max_compiles_per_cycle: int = 4
    neighbors: bool = True
    tune: bool = False
    top_k: int = 2
    max_workers: int = 2


class Speculator(BackgroundLoop):
    """The background compile thread owned by a ``RuntimeServer``.

    The server constructs one when built with ``speculate=`` truthy,
    starts it alongside the worker pool, and stops it on ``close()``.
    Tests (and benchmarks that want determinism) can drive it
    synchronously with :meth:`run_once` instead of waiting on the
    thread.
    """

    thread_name = "repro-speculator"

    def __init__(
        self,
        server: "RuntimeServer",
        config: Optional[SpeculatorConfig] = None,
    ) -> None:
        self.config = config or SpeculatorConfig()
        super().__init__(server, self.config.interval_s)
        # Compile keys already attempted (success or failure): a
        # mapping the compiler rejects must not be retried every cycle.
        self._attempted: Set[str] = set()
        # Buckets this speculator precompiled, -> "has a request hit
        # it yet" (so each bucket counts at most one speculation hit).
        self._precompiled: Dict[Tuple[str, Bucket], bool] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # One speculation cycle
    # ------------------------------------------------------------------
    def run_once(self) -> int:
        """Run one speculation cycle synchronously.

        Scans the traffic snapshot (hottest buckets first), enumerates
        candidate buckets (observed + ladder neighbors), and compiles
        whatever is not already cached, up to
        ``max_compiles_per_cycle``. Yields early when real traffic
        arrives or the server starts shutting down.

        Returns:
            The number of kernels compiled this cycle.
        """
        tracer = self.server.tracer
        if not tracer.enabled:
            return self._run_cycle()
        with tracer.span("speculate.cycle", "speculate") as span:
            compiled = self._run_cycle()
            span.args["compiles"] = compiled
        return compiled

    def _run_cycle(self) -> int:
        """One cycle's actual work (see :meth:`run_once`)."""
        server = self.server
        traffic = server.telemetry.bucket_traffic()
        compiled = 0
        hottest = sorted(traffic.items(), key=lambda kv: (-kv[1], kv[0][0]))
        for (name, bucket), _count in hottest:
            if name not in server.registry:
                continue
            registered = server.registry.get(name)
            # Specialized exact-shape traffic lands off the ladder;
            # speculate around its generic bucket, not the raw shape.
            rounded = registered.bucket(bucket.as_dict())
            if rounded != bucket:
                bucket = rounded
            candidates: List[Bucket] = [bucket]
            if self.config.neighbors:
                candidates.extend(registered.policy.neighbors(bucket))
            for candidate in candidates:
                if self._stop.is_set() or server.queue_depth > 0:
                    return compiled
                if compiled >= self.config.max_compiles_per_cycle:
                    return compiled
                compiled += self._speculate_bucket(registered, candidate)
        return compiled

    def note_request(self, kernel: str, bucket: Bucket) -> None:
        """Mark real traffic on a bucket; counts a speculation hit the
        first time a precompiled bucket is requested."""
        key = (kernel, bucket)
        with self._lock:
            if self._precompiled.get(key) is not False:
                return
            self._precompiled[key] = True
        self.server.telemetry.record_speculation_hit()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _builds_for(
        self, registered: RegisteredKernel, bucket: Bucket
    ) -> List[KernelBuild]:
        """The builds worth precompiling for one candidate bucket.

        The head of the list is always the exact build the server's
        ``_obtain_kernel`` would produce, so the compile key matches
        real traffic. ``tune=True`` appends the analytically-ranked
        top-k mappings and pins the winner when the bucket has no
        tuned parameters yet.
        """
        server = self.server
        ranked = []
        if self.config.tune and registered.search_space is not None:
            from repro.tuner import rank_candidates

            adapt = registered.tune_adapter or (lambda candidate: candidate)
            ranked = rank_candidates(
                lambda machine, **candidate: registered.build(
                    machine, bucket, params=adapt(candidate)
                ),
                server.machine,
                registered.search_space,
                top_k=self.config.top_k,
            )
            if ranked:
                server._bucket_params.setdefault(
                    (registered.name, bucket), adapt(ranked[0].candidate)
                )
        params = server._bucket_params.get((registered.name, bucket))
        builds = [registered.build(server.machine, bucket, params)]
        builds.extend(survivor.build for survivor in ranked)
        return builds

    def _speculate_bucket(
        self, registered: RegisteredKernel, bucket: Bucket
    ) -> int:
        """Precompile one candidate bucket; returns compiles executed."""
        from repro import api

        server = self.server
        try:
            builds = self._builds_for(registered, bucket)
        except Exception:
            self.errors += 1
            return 0
        todo: List[Tuple[str, KernelBuild]] = []
        seen: Set[str] = set()
        for build in builds:
            key = compile_key_for(build, server._options)
            if key in seen or key in self._attempted:
                continue
            seen.add(key)
            if key in compile_cache:
                continue
            if server.disk_tier is not None and server.disk_tier.contains(
                key
            ):
                continue
            todo.append((key, build))
        if not todo:
            return 0
        kernels = api.compile_many(
            [build for _key, build in todo],
            options=server._options,
            executor="thread",
            max_workers=self.config.max_workers,
            raise_on_error=False,
        )
        succeeded = 0
        for (key, _build), kernel in zip(todo, kernels):
            self._attempted.add(key)
            if isinstance(kernel, api.CompileFailure):
                continue
            succeeded += 1
            if server.disk_tier is not None and not server.disk_tier.contains(
                key
            ):
                # Memory hits skip write-through; persist explicitly so
                # restarts warm from disk, exactly like warm() does.
                server.disk_tier.store(key, kernel)
        issued = 0
        if succeeded:
            with self._lock:
                if (registered.name, bucket) not in self._precompiled:
                    self._precompiled[(registered.name, bucket)] = False
                    issued = 1
        server.telemetry.record_speculation(succeeded, issued)
        return succeeded
