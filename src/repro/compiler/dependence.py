"""Dependence analysis (paper section 4.2.1).

Consumes the task-based logical description plus the mapping
specification and produces event IR. The analysis is an in-order
traversal of the instantiated task tree that maintains, per buffer, the
event of its last writer and the events of readers since that write.
Every task launch follows the copy-in/copy-out discipline (the paper's
four lowering steps), which keeps the analysis local to one task variant
at a time; the copy elimination pass later removes the redundant copies
this introduces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CompileError, PrivilegeError
from repro.frontend.context import trace_variant
from repro.frontend.mapping import MappingSpec, TaskMapping
from repro.frontend.privileges import Privilege
from repro.frontend.stmts import (
    CallExternalStmt,
    LaunchStmt,
    LoopStmt,
    MakeTensorStmt,
)
from repro.frontend.task import TaskVariant
from repro.ir.events import EventUse
from repro.ir.module import Buffer, IRFunction
from repro.ir.ops import AllocOp, Block, CallOp, CopyOp, ForOp, PForOp
from repro.machine.memory import MemoryKind
from repro.machine.processor import ProcessorKind, depth_of
from repro.sym import Var
from repro.tensors.dtype import DType
from repro.tensors.regions import prove_iterations_disjoint
from repro.tensors.tensor import TensorRef


@dataclass
class _BufferState:
    """Dependence state of one buffer during the traversal."""

    last_write: Optional[EventUse] = None
    readers: List[EventUse] = field(default_factory=list)

    def clone(self) -> "_BufferState":
        return _BufferState(self.last_write, list(self.readers))


class _State:
    """Per-buffer dependence state with a read/write journal.

    The journal lets loop lowering summarize which outer buffers the loop
    body touched, so the loop's completion event can replace the body's
    fine-grained events in the outer state.
    """

    def __init__(self) -> None:
        self.by_uid: Dict[int, _BufferState] = {}
        self.read_journal: Set[int] = set()
        self.write_journal: Set[int] = set()

    def of(self, uid: int) -> _BufferState:
        return self.by_uid.setdefault(uid, _BufferState())

    def deps_for_read(self, uid: int) -> List[EventUse]:
        state = self.of(uid)
        return [state.last_write] if state.last_write is not None else []

    def deps_for_write(self, uid: int) -> List[EventUse]:
        state = self.of(uid)
        deps = list(state.readers)
        if state.last_write is not None:
            deps.append(state.last_write)
        return deps

    def register_read(self, uid: int, use: EventUse) -> None:
        self.of(uid).readers.append(use)
        self.read_journal.add(uid)

    def register_write(self, uid: int, use: EventUse) -> None:
        state = self.of(uid)
        state.last_write = use
        state.readers = []
        self.write_journal.add(uid)

    def clone(self) -> "_State":
        out = _State()
        out.by_uid = {uid: st.clone() for uid, st in self.by_uid.items()}
        return out


_fresh_counter = itertools.count()


class DependenceAnalysis:
    """Lowers one entrypoint instance into an :class:`IRFunction`."""

    def __init__(self, spec: MappingSpec, kernel_name: str):
        self.spec = spec
        self.registry = spec.registry
        self.machine = spec.machine
        self.kernel_name = kernel_name

    # ------------------------------------------------------------------
    def run(
        self,
        arg_shapes: Sequence[Tuple[int, ...]],
        arg_dtypes: Sequence[DType],
        scalar_args: Optional[Dict[str, Any]] = None,
    ) -> IRFunction:
        """Lower the mapped program applied to arguments of these shapes."""
        root = self.spec.entrypoint
        variant = self.spec.variant_of(root)
        tensor_params = variant.tensor_params
        if len(arg_shapes) != len(tensor_params):
            raise CompileError(
                f"entrypoint {variant.variant_name!r} has "
                f"{len(tensor_params)} tensor parameters, got "
                f"{len(arg_shapes)} argument shapes"
            )
        fn = IRFunction(self.kernel_name, self.machine)
        fn.metadata["entry_instance"] = root.instance
        args: List[Any] = []
        shape_iter = iter(zip(arg_shapes, arg_dtypes))
        scalar_args = dict(scalar_args or {})
        for param in variant.params:
            if param in variant.privileges:
                shape, dtype = next(shape_iter)
                buffer = fn.add_param(param, shape, dtype)
                args.append(buffer.ref())
            else:
                if param not in scalar_args:
                    raise CompileError(
                        f"missing scalar argument {param!r} for entrypoint"
                    )
                args.append(scalar_args[param])
        state = _State()
        privileges = {
            fn.params[i].tensor.uid: variant.privilege_of(name)
            for i, name in enumerate(tensor_params)
        }
        self._lower_variant(
            fn, fn.body, state, root, variant, args, privileges
        )
        return fn

    # ------------------------------------------------------------------
    # Variant bodies
    # ------------------------------------------------------------------
    def _lower_variant(
        self,
        fn: IRFunction,
        block: Block,
        state: _State,
        mapping: TaskMapping,
        variant: TaskVariant,
        args: Sequence[Any],
        privileges: Dict[int, Privilege],
    ) -> None:
        trace = trace_variant(variant, args, mapping.tunables, self.registry)
        for tensor in trace.local_tensors:
            # Locals have no mapped home; they materialize only through
            # the fresh allocations of callee arguments (NONE memory).
            buffer = Buffer.from_tensor(tensor, MemoryKind.NONE)
            fn.adopt_buffer(buffer)
            privileges[tensor.uid] = Privilege.READ_WRITE
        self._lower_stmts(
            fn, block, state, mapping, trace.statements, privileges
        )

    def _lower_stmts(
        self,
        fn: IRFunction,
        block: Block,
        state: _State,
        mapping: TaskMapping,
        stmts: Sequence[Any],
        privileges: Dict[int, Privilege],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, MakeTensorStmt):
                block.append(AllocOp(fn.buffers[stmt.tensor.uid]))
            elif isinstance(stmt, LaunchStmt):
                self._lower_launch(fn, block, state, mapping, stmt, privileges)
            elif isinstance(stmt, LoopStmt):
                self._lower_loop(fn, block, state, mapping, stmt, privileges)
            elif isinstance(stmt, CallExternalStmt):
                raise CompileError(
                    "call_external outside a leaf task variant"
                )
            else:
                raise CompileError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    # Loops
    # ------------------------------------------------------------------
    def _lower_loop(
        self,
        fn: IRFunction,
        block: Block,
        state: _State,
        mapping: TaskMapping,
        stmt: LoopStmt,
        privileges: Dict[int, Privilege],
    ) -> None:
        # Multi-dimensional domains become nested loops, one per index.
        self._lower_loop_dim(
            fn, block, state, mapping, stmt, privileges, dim=0
        )

    def _lower_loop_dim(
        self,
        fn: IRFunction,
        block: Block,
        state: _State,
        mapping: TaskMapping,
        stmt: LoopStmt,
        privileges: Dict[int, Privilege],
        dim: int,
    ) -> None:
        index = stmt.indices[dim]
        extent = stmt.extents[dim]
        innermost = dim == len(stmt.indices) - 1
        body_state = state.clone()
        body_state.read_journal = set()
        body_state.write_journal = set()
        body = Block()
        if innermost:
            if stmt.parallel:
                self._check_prange_disjoint(stmt, mapping)
            self._lower_stmts(
                fn, body, body_state, mapping, stmt.body, privileges
            )
        else:
            self._lower_loop_dim(
                fn, body, body_state, mapping, stmt, privileges, dim + 1
            )
        if not body.ops:
            return
        if stmt.parallel:
            proc = self._prange_proc(stmt, mapping)
            loop = PForOp(index, extent, proc, body)
        else:
            loop = ForOp(index, extent, body)
            loop.proc = mapping.proc
        self._set_body_yield(body)
        self._hoist_outer_preconds(loop, body)
        block.append(loop)
        # Summarize the body's effects with the loop's completion event.
        loop_use = (
            loop.result.use_all()
            if isinstance(loop, PForOp)
            else loop.result.use()
        )
        for uid in body_state.write_journal:
            state.register_write(uid, loop_use)
        for uid in body_state.read_journal - body_state.write_journal:
            state.register_read(uid, loop_use)

    def _set_body_yield(self, body: Block) -> None:
        for op in reversed(body.ops):
            if op.result is not None:
                if op.result.is_unit:
                    body.yield_use = op.result.use()
                else:
                    body.yield_use = op.result.use_all()
                return

    def _hoist_outer_preconds(self, loop, body: Block) -> None:
        """Move body preconditions on outer events up to the loop.

        This gives the Figure-8b shape: the ``for`` op carries ``{e6}``
        while the first in-body copy carries ``{}``. Sequential-iteration
        ordering is implicit in ``ForOp``, so hoisting is sound.
        """
        inner_events = {
            id(op.result) for op in body.walk() if op.result is not None
        }
        hoisted: List[EventUse] = []
        for op in body.walk():
            keep = []
            for use in op.preconds:
                if id(use.event) in inner_events:
                    keep.append(use)
                elif use not in hoisted:
                    hoisted.append(use)
            op.preconds = keep
        for use in hoisted:
            if use not in loop.preconds:
                loop.preconds.append(use)

    def _prange_proc(
        self, stmt: LoopStmt, mapping: TaskMapping
    ) -> ProcessorKind:
        procs = set()

        def visit(stmts) -> None:
            for inner in stmts:
                if isinstance(inner, LaunchStmt):
                    child = self.spec.dispatch(
                        mapping, inner.task_name, inner.to
                    )
                    procs.add(child.proc)
                elif isinstance(inner, LoopStmt):
                    visit(inner.body)

        visit(stmt.body)
        if not procs:
            # A prange with no direct launches parallelizes at the
            # current level.
            return mapping.proc
        if len(procs) > 1:
            raise CompileError(
                f"prange in instance {mapping.instance!r} launches tasks "
                f"mapped to multiple processor levels: "
                f"{sorted(p.name for p in procs)}"
            )
        return procs.pop()

    def _check_prange_disjoint(
        self, stmt: LoopStmt, mapping: TaskMapping
    ) -> None:
        """Verify parallel iterations perform no aliasing writes.

        Write pairs are first proved disjoint *analytically* over the
        whole iteration domain by the region algebra
        (:func:`repro.tensors.regions.prove_iterations_disjoint` — the
        affine separating-axis argument); only pairs the proof cannot
        resolve fall back to sampling iteration pairs (first, second,
        last), which catches the common off-by-one tiling errors. The
        fallback's verdicts are those of :meth:`TensorRef.may_alias`,
        so they can never be weaker than coordinate enumeration.
        """
        writes: List[Tuple[TensorRef, Privilege]] = []
        for inner in stmt.body:
            if not isinstance(inner, LaunchStmt):
                continue
            child = self.spec.dispatch(mapping, inner.task_name, inner.to)
            variant = self.spec.variant_of(child)
            for name, ref in zip(
                variant.tensor_params, inner.tensor_args()
            ):
                privilege = variant.privilege_of(name)
                if privilege.writes:
                    writes.append((ref, privilege))
        if not writes:
            return
        loop_vars = {v.name for v in stmt.indices}
        for ref, _ in writes:
            if not ref.free_variables() & loop_vars:
                raise PrivilegeError(
                    f"prange in instance {mapping.instance!r} writes "
                    f"{ref!r} identically from every iteration"
                )
        domain = tuple(
            (var.name, extent)
            for var, extent in zip(stmt.indices, stmt.extents)
        )
        unresolved = [
            (ref_a, ref_b)
            for (ref_a, _), (ref_b, _)
            in itertools.combinations_with_replacement(writes, 2)
            if not prove_iterations_disjoint(ref_a, ref_b, domain)
        ]
        if not unresolved:
            return
        samples = self._sample_envs(stmt)
        for ref_a, ref_b in unresolved:
            for env_a, env_b in itertools.combinations(samples, 2):
                try:
                    a = _bind(ref_a, env_a)
                    b = _bind(ref_b, env_b)
                except Exception:
                    continue
                if a.may_alias(b):
                    raise PrivilegeError(
                        f"prange in instance {mapping.instance!r} performs "
                        f"aliasing writes: {ref_a!r} under {env_a} overlaps "
                        f"{ref_b!r} under {env_b}"
                    )

    def _sample_envs(self, stmt: LoopStmt) -> List[Dict[str, int]]:
        names = [v.name for v in stmt.indices]
        points: List[Tuple[int, ...]] = []
        lows = tuple(0 for _ in stmt.extents)
        highs = tuple(extent - 1 for extent in stmt.extents)
        seconds = tuple(min(1, extent - 1) for extent in stmt.extents)
        for point in (lows, seconds, highs):
            if point not in points:
                points.append(point)
        return [dict(zip(names, p)) for p in points]

    # ------------------------------------------------------------------
    # Launches (the four copy-in/copy-out steps)
    # ------------------------------------------------------------------
    def _lower_launch(
        self,
        fn: IRFunction,
        block: Block,
        state: _State,
        mapping: TaskMapping,
        stmt: LaunchStmt,
        privileges: Dict[int, Privilege],
    ) -> None:
        child = self.spec.dispatch(mapping, stmt.task_name, stmt.to)
        variant = self.spec.variant_of(child)
        tensor_params = variant.tensor_params
        tensor_args = stmt.tensor_args()
        mems = dict(zip(tensor_params, child.mems))

        # Privilege containment (paper section 3.2).
        for name, ref in zip(tensor_params, tensor_args):
            requested = variant.privilege_of(name)
            held = privileges.get(ref.root.uid, Privilege.READ_WRITE)
            if not held.covers(requested):
                raise PrivilegeError(
                    f"instance {mapping.instance!r} holds {held.name} on "
                    f"{ref.root!r} but launches {variant.variant_name!r} "
                    f"requesting {requested.name}"
                )

        # Step 1: fresh allocations per tensor argument.
        fresh: Dict[str, Buffer] = {}
        for name, ref in zip(tensor_params, tensor_args):
            buffer = fn.add_buffer(
                f"{name}_{variant.variant_name}_{next(_fresh_counter)}",
                ref.shape,
                ref.dtype,
                mems[name],
            )
            fresh[name] = buffer

        # Step 2: copy-in for read arguments.
        for name, ref in zip(tensor_params, tensor_args):
            if not variant.privilege_of(name).reads:
                continue
            copy = CopyOp(
                src=ref,
                dst=fresh[name].ref(),
                preconds=state.deps_for_read(ref.root.uid),
                proc=mapping.proc,
            )
            block.append(copy)
            state.register_read(ref.root.uid, copy.result.use())
            state.register_write(
                fresh[name].tensor.uid, copy.result.use()
            )

        # Step 3: recursively lower the callee.
        child_args: List[Any] = []
        tensor_iter = iter(tensor_params)
        arg_iter = iter(tensor_args)
        for param, arg in zip(variant.params, stmt.args):
            if param in variant.privileges:
                next(tensor_iter)
                next(arg_iter)
                child_args.append(fresh[param].ref())
            else:
                child_args.append(arg)
        child_privileges = dict(privileges)
        for name in tensor_params:
            child_privileges[fresh[name].tensor.uid] = variant.privilege_of(
                name
            )
        if variant.is_leaf:
            self._lower_leaf(
                fn, block, state, child, variant, child_args
            )
        else:
            self._lower_variant(
                fn, block, state, child, variant, child_args,
                child_privileges,
            )

        # Step 4: copy-out for written arguments.
        for name, ref in zip(tensor_params, tensor_args):
            if not variant.privilege_of(name).writes:
                continue
            buffer = fresh[name]
            preconds = state.deps_for_read(buffer.tensor.uid)
            preconds += state.deps_for_write(ref.root.uid)
            copy = CopyOp(
                src=buffer.ref(),
                dst=ref,
                preconds=_dedup(preconds),
                proc=mapping.proc,
            )
            block.append(copy)
            state.register_read(buffer.tensor.uid, copy.result.use())
            state.register_write(ref.root.uid, copy.result.use())

    # ------------------------------------------------------------------
    # Leaf tasks
    # ------------------------------------------------------------------
    def _lower_leaf(
        self,
        fn: IRFunction,
        block: Block,
        state: _State,
        mapping: TaskMapping,
        variant: TaskVariant,
        args: Sequence[Any],
    ) -> None:
        trace = trace_variant(variant, args, mapping.tunables, self.registry)
        param_priv = {}
        for param, arg in zip(variant.params, args):
            if param in variant.privileges and isinstance(arg, TensorRef):
                param_priv[arg.root.uid] = variant.privilege_of(param)
        for stmt in trace.statements:
            if not isinstance(stmt, CallExternalStmt):
                raise CompileError(
                    f"leaf variant {variant.variant_name!r} may only "
                    f"contain call_external statements, found {stmt!r}"
                )
            external = self.registry.external(stmt.function)
            reads: List[TensorRef] = []
            writes: List[TensorRef] = []
            preconds: List[EventUse] = []
            for ref in stmt.tensor_args():
                privilege = param_priv.get(
                    ref.root.uid, Privilege.READ_WRITE
                )
                if privilege.reads:
                    reads.append(ref)
                    preconds += state.deps_for_read(ref.root.uid)
                if privilege.writes:
                    writes.append(ref)
                    preconds += state.deps_for_write(ref.root.uid)
            call = CallOp(
                function=stmt.function,
                args=stmt.args,
                reads=tuple(reads),
                writes=tuple(writes),
                cost_kind=external.cost_kind,
                proc=mapping.proc,
                preconds=_dedup(preconds),
            )
            block.append(call)
            use = call.result.use()
            for ref in reads:
                state.register_read(ref.root.uid, use)
            for ref in writes:
                state.register_write(ref.root.uid, use)


def _dedup(uses: List[EventUse]) -> List[EventUse]:
    out: List[EventUse] = []
    for use in uses:
        if use not in out:
            out.append(use)
    return out


def _bind(ref: TensorRef, env: Dict[str, int]) -> TensorRef:
    """Substitute loop indices into a reference's partition path."""
    from repro.sym import substitute, Const

    bindings = {name: Const(value) for name, value in env.items()}
    path = tuple(
        (partition, tuple(substitute(e, bindings) for e in index))
        for partition, index in ref.path
    )
    return TensorRef(ref.root, path)
