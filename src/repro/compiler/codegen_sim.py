"""Simulator backend: lower final IR to an executable KernelSchedule.

The analogue of the paper's CUDA C++ generation for our environment: the
event graph is lowered onto the synchronization the simulator enforces
(instruction dependencies, software-pipelining WAR distances), and each
remaining operation is classified onto the hardware unit that would
execute it — TMA for global<->shared copies, Tensor Core for wgmma
calls, SIMT/SFU pipelines for arithmetic, shared-memory bandwidth for
register staging. Copies into or out of never-materialized (NONE)
buffers cost nothing: their physical home is the register fragments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.frontend.task import TaskRegistry
from repro.gpusim.kernel import Instr, KernelSchedule, Segment
from repro.ir.module import IRFunction
from repro.ir.ops import AllocOp, Block, CallOp, CopyOp, ForOp, Operation, PForOp
from repro.machine.memory import MemoryKind
from repro.machine.processor import ProcessorKind
from repro.sym import variables

_PROC_LEVELS = ("warpgroup", "warp", "thread")


def lower_to_schedule(
    fn: IRFunction,
    registry: TaskRegistry,
    total_flops: float,
    unique_dram_bytes: float,
    use_tma: Optional[bool] = None,
) -> KernelSchedule:
    """Build the per-CTA schedule for the simulator."""
    if use_tma is None:
        use_tma = "tma_issue_cycles" in fn.machine.specs
    grid, body = _grid_and_body(fn)
    extents = dict(
        {"warp": 4, "thread": 32, "warpgroup": 1},
        **fn.metadata.get("proc_extents", {}),
    )
    warpspec_report = fn.metadata.get("warpspec")
    warpspecialized = bool(
        warpspec_report is not None and warpspec_report.enabled
    )
    allocation = fn.metadata.get("allocation")
    smem_bytes = allocation.total_bytes if allocation else 0
    regs = allocation.registers_per_thread if allocation else 64

    producer_of = _event_producers(fn)
    lowering = _Lowering(fn, registry, extents, use_tma, producer_of)
    segments = lowering.lower_body(body)

    return KernelSchedule(
        name=fn.name,
        segments=segments,
        grid=grid,
        n_warpgroups=extents.get("warpgroup", 1),
        warpspecialized=warpspecialized,
        smem_bytes_per_cta=smem_bytes,
        regs_per_thread=regs,
        total_flops=total_flops,
        unique_dram_bytes=unique_dram_bytes,
        metadata={"machine": fn.machine.name, "use_tma": use_tma},
    )


def _grid_and_body(fn: IRFunction) -> Tuple[int, Block]:
    grid = 1
    block = fn.body
    while True:
        grid_loops = [
            op
            for op in block.ops
            if isinstance(op, PForOp) and op.proc is ProcessorKind.BLOCK
        ]
        if not grid_loops:
            return grid, block
        if len(grid_loops) > 1:
            raise CompileError("multiple grid loops at one level")
        loop = grid_loops[0]
        grid *= loop.extent
        block = loop.body


def _event_producers(fn: IRFunction) -> Dict[int, Operation]:
    out: Dict[int, Operation] = {}
    for op in fn.walk():
        if op.result is not None:
            out[id(op.result)] = op
    return out


class _Lowering:
    def __init__(
        self,
        fn: IRFunction,
        registry: TaskRegistry,
        extents: Dict[str, int],
        use_tma: bool,
        producer_of: Dict[int, Operation],
    ):
        self.fn = fn
        self.registry = registry
        self.extents = extents
        self.use_tma = use_tma
        self.producer_of = producer_of
        self.materialized: Dict[int, Instr] = {}

    # ------------------------------------------------------------------
    def lower_body(self, body: Block) -> List[Segment]:
        segments: List[Segment] = []
        straight: List[Instr] = []
        for op in body.ops:
            if isinstance(op, AllocOp):
                continue
            if isinstance(op, ForOp):
                if straight:
                    segments.append(Segment(straight))
                    straight = []
                segments.append(self._lower_loop(op))
                continue
            if isinstance(op, PForOp):
                raise CompileError(
                    f"unlowered parallel loop over {op.proc.name} in the "
                    "block body; vectorization should have flattened it"
                )
            instr = self._lower_op(op)
            if instr is not None:
                straight.append(instr)
        if straight:
            segments.append(Segment(straight))
        return segments

    def _lower_loop(self, loop: ForOp) -> Segment:
        instrs: List[Instr] = []
        for op in loop.body.ops:
            if isinstance(op, AllocOp):
                continue
            if isinstance(op, (ForOp, PForOp)):
                raise CompileError(
                    "nested loops inside a block-level main loop are not "
                    "supported by the schedule backend; restructure the "
                    "logical description to a single main loop"
                )
            instr = self._lower_op(op)
            if instr is not None:
                instrs.append(instr)
        # Loop-entry dependencies apply to every instruction; they
        # resolve once (their producers live in earlier segments).
        entry_deps = self._dep_uids(loop.preconds)
        for instr in instrs:
            for dep in entry_deps:
                if dep not in instr.deps:
                    instr.deps.append(dep)
        return Segment(
            instrs,
            extent=loop.extent,
            pipeline=getattr(loop, "pipeline", 1),
        )

    # ------------------------------------------------------------------
    def _lower_op(self, op: Operation) -> Optional[Instr]:
        if isinstance(op, CopyOp):
            instr = self._lower_copy(op)
        elif isinstance(op, CallOp):
            instr = self._lower_call(op)
        else:
            raise CompileError(f"cannot lower op {op!r} to the simulator")
        instr.deps = self._dep_uids(op.preconds)
        instr.war_distance = getattr(op, "war_distance", 0)
        instr.war_consumers = list(getattr(op, "war_consumers", ()))
        self.materialized[op.uid] = instr
        return instr

    def _dep_uids(self, preconds) -> List[int]:
        deps: List[int] = []
        for use in preconds:
            producer = self.producer_of.get(id(use.event))
            if producer is None:
                continue
            if isinstance(producer, (ForOp, PForOp)):
                # A dependence on a loop's completion becomes a
                # dependence on the loop's yielded operation.
                yielded = producer.body.yield_use
                if yielded is None:
                    continue
                producer = self.producer_of.get(id(yielded.event))
                if producer is None:
                    continue
            if producer.uid not in deps:
                deps.append(producer.uid)
        return deps

    # ------------------------------------------------------------------
    def _replicas(self, refs) -> int:
        levels = set()
        for ref in refs:
            levels |= {
                name
                for name in ref.free_variables()
                if name in _PROC_LEVELS
            }
        out = 1
        for level in levels:
            out *= self.extents.get(level, 1)
        return out

    def _memory_of(self, ref) -> MemoryKind:
        buffer = self.fn.buffers.get(ref.root.uid)
        if buffer is None:
            raise CompileError(f"reference {ref!r} has no buffer")
        return buffer.memory

    def _lower_copy(self, op: CopyOp) -> Instr:
        src_mem = self._memory_of(op.src)
        dst_mem = self._memory_of(op.dst)
        replicas = self._replicas([op.src, op.dst])
        nbytes = op.src.size_bytes * replicas
        role = getattr(op, "role", "compute")
        none = MemoryKind.NONE
        if src_mem is none or dst_mem is none:
            # NONE buffers live in register fragments: moving them to or
            # from shared memory is real staging traffic; register-only
            # movement is free.
            other = dst_mem if src_mem is none else src_mem
            if other is MemoryKind.SHARED:
                kind = "smem_copy"
            elif other is MemoryKind.GLOBAL:
                kind = "st_global" if src_mem is none else "ld_global"
            else:
                kind = "nop"
                nbytes = 0
        elif src_mem is MemoryKind.GLOBAL and dst_mem is MemoryKind.SHARED:
            kind = "tma_load" if self.use_tma else "cp_async"
        elif src_mem is MemoryKind.SHARED and dst_mem is MemoryKind.GLOBAL:
            kind = "tma_store" if self.use_tma else "st_global"
        elif src_mem is MemoryKind.GLOBAL and dst_mem is MemoryKind.REGISTER:
            kind = "ld_global"
        elif src_mem is MemoryKind.REGISTER and dst_mem is MemoryKind.GLOBAL:
            kind = "st_global"
        elif MemoryKind.SHARED in (src_mem, dst_mem):
            kind = "smem_copy"
        else:  # register-to-register
            kind = "nop"
            nbytes = 0
        return Instr(
            uid=op.uid,
            kind=kind,
            role=role,
            bytes_moved=nbytes,
            label=f"copy {op.src.root.name}->{op.dst.root.name}",
        )

    def _lower_call(self, op: CallOp) -> Instr:
        external = self.registry.external(op.function)
        replicas = self._replicas(list(op.tensor_uses()))
        shapes = [
            a.shape for a in op.args if hasattr(a, "shape")
        ]
        if external.flops_fn is not None:
            flops = external.flops_fn(shapes) * replicas
        else:
            written = sum(
                _elements(w.shape) for w in op.writes
            )
            flops = written * replicas
        kind = external.cost_kind
        sfu_ops = flops if kind == "sfu" else 0.0
        nbytes = 0
        if kind == "smem_copy":
            nbytes = int(flops) * 2  # treated as bytes staged
        return Instr(
            uid=op.uid,
            kind=kind,
            role=getattr(op, "role", "compute"),
            flops=flops if kind != "sfu" else 0.0,
            sfu_ops=sfu_ops,
            bytes_moved=nbytes,
            label=op.function,
        )


def _elements(shape) -> int:
    out = 1
    for extent in shape:
        out *= extent
    return out
