"""The Cypress compiler (paper section 4, Figure 6).

Passes, in pipeline order:

1. :mod:`repro.compiler.dependence` — task tree to event IR.
2. :mod:`repro.compiler.vectorize` — flatten implicit parallel loops.
3. :mod:`repro.compiler.copy_elim` — remove copy-in/copy-out noise.
4. :mod:`repro.compiler.allocation` — shared-memory interference
   allocation with WAR synchronization edges.
5. :mod:`repro.compiler.warpspec` — warp specialization and software
   pipelining.
6. :mod:`repro.compiler.codegen_cuda` / :mod:`repro.compiler.codegen_sim`
   — CUDA-like C++ text, and the executable schedule for the simulator.

:func:`repro.compiler.pipeline.compile_program` runs them in order.
"""

from repro.compiler.pipeline import CompiledKernel, compile_program

__all__ = ["compile_program", "CompiledKernel"]
