"""The Cypress compiler (paper section 4, Figure 6).

The pipeline is organized as an explicit **pass manager**
(:mod:`repro.compiler.passes`): each stage is a named :class:`Pass` in
:data:`PASS_REGISTRY`, and :class:`PassManager` runs an ordered list of
them with per-pass wall-time/IR-size instrumentation and a configurable
:class:`VerifyPolicy`. The default pipeline, in order:

1. :mod:`repro.compiler.dependence` — task tree to event IR (the
   frontend stage; it *creates* the IR, so it runs before the manager).
2. ``vectorize`` — flatten implicit parallel loops.
3. ``copy-elim`` — remove copy-in/copy-out noise.
4. ``allocate-shared`` — shared-memory interference allocation with WAR
   synchronization edges.
5. ``warp-specialize`` — warp specialization and software pipelining.
6. ``lower-schedule`` / ``codegen-cuda`` — the executable schedule for
   the simulator, and CUDA-like C++ text.

:func:`repro.compiler.pipeline.compile_program` drives the whole flow.
It is fronted by a content-keyed **compile cache**
(:mod:`repro.compiler.cache`): the cache key hashes the mapping spec,
the argument shapes/dtypes, the machine description, and the
:class:`CompileOptions`, so recompiling an identical instantiation (the
common case in autotuning sweeps) executes no passes at all. The
per-pass :class:`PassTrace` lands in ``CompiledKernel.metadata``.
"""

from repro.compiler.cache import (
    CacheStats,
    CompileCache,
    SecondTier,
    compile_cache,
    compile_key,
)
from repro.compiler.passes import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    CompileOptions,
    Pass,
    PassContext,
    PassManager,
    PassRecord,
    PassTrace,
    VerifyPolicy,
    build_pass,
    pass_execution_count,
    register_pass,
)
from repro.compiler.pipeline import (
    CompiledKernel,
    compile_key_for,
    compile_program,
)

__all__ = [
    "CacheStats",
    "CompileCache",
    "CompileOptions",
    "CompiledKernel",
    "DEFAULT_PIPELINE",
    "PASS_REGISTRY",
    "Pass",
    "PassContext",
    "PassManager",
    "PassRecord",
    "PassTrace",
    "SecondTier",
    "VerifyPolicy",
    "build_pass",
    "compile_cache",
    "compile_key",
    "compile_key_for",
    "compile_program",
    "pass_execution_count",
    "register_pass",
]
