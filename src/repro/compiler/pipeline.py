"""The compile driver: frontend, pass manager, and compile cache.

``compile_program`` is the one entry point every caller funnels through
(directly or via :func:`repro.api.compile_kernel`). It

1. fingerprints the instantiation and consults the content-keyed
   :mod:`compile cache <repro.compiler.cache>`;
2. on a miss, runs dependence analysis (task tree -> event IR) and then
   the :class:`~repro.compiler.passes.PassManager` over the default
   Figure-6 pipeline (or ``options.passes``);
3. bundles every artifact — both IR stages, the simulator schedule, the
   CUDA text, the allocation and warp-specialization reports, and the
   per-pass :class:`~repro.compiler.passes.PassTrace` — into a
   :class:`CompiledKernel`.

The legacy keyword arguments (``scalar_args``, ``use_tma``) remain for
compatibility; new code should pass a
:class:`~repro.compiler.passes.CompileOptions`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.compiler.allocation import AllocationReport
from repro.compiler.cache import compile_cache, compile_key
from repro.compiler.dependence import DependenceAnalysis
from repro.compiler.passes import (
    CompileOptions,
    PassContext,
    PassManager,
    PassTrace,
)
from repro.compiler.warpspec import WarpSpecReport
from repro.errors import CompileError
from repro.frontend.mapping import MappingSpec, TaskMapping
from repro.gpusim.kernel import KernelSchedule
from repro.ir.clone import clone_function
from repro.ir.module import IRFunction
from repro.machine.processor import ProcessorKind
from repro.tensors.dtype import DType


@dataclass
class CompiledKernel:
    """Everything the compiler produced for one kernel instantiation."""

    name: str
    dependence_ir: IRFunction
    final_ir: IRFunction
    schedule: KernelSchedule
    cuda_source: str
    allocation: AllocationReport
    warpspec: WarpSpecReport
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def pass_trace(self) -> Optional[PassTrace]:
        """Per-pass instrumentation from the pass manager."""
        return self.metadata.get("pass_trace")


def compile_program(
    spec: MappingSpec,
    name: str,
    arg_shapes: Sequence[Tuple[int, ...]],
    arg_dtypes: Sequence[DType],
    total_flops: float,
    unique_dram_bytes: float,
    scalar_args: Optional[Dict[str, Any]] = None,
    use_tma: Optional[bool] = None,
    options: Optional[CompileOptions] = None,
) -> CompiledKernel:
    """Compile a mapped Cypress program for concrete argument shapes.

    Args:
        spec: the validated mapping specification (carries the registry
            and the target machine).
        name: kernel name for reports and generated code.
        arg_shapes / arg_dtypes: one entry per entrypoint tensor
            parameter.
        total_flops: useful arithmetic of the whole kernel, for TFLOP/s
            reporting.
        unique_dram_bytes: compulsory global traffic (the operands'
            footprint), for the HBM roofline.
        scalar_args: values for non-tensor entrypoint parameters
            (overrides ``options.scalar_args`` when given).
        use_tma: force the copy mechanism; defaults to the machine's
            capability (overrides ``options.use_tma`` when given).
        options: full compile configuration; see
            :class:`~repro.compiler.passes.CompileOptions`.
    """
    options = _merge_options(options, scalar_args, use_tma)
    key = compile_key(
        spec, name, arg_shapes, arg_dtypes, total_flops,
        unique_dram_bytes, options,
    )

    def compute() -> CompiledKernel:
        return _compile_uncached(
            spec, name, arg_shapes, arg_dtypes, total_flops,
            unique_dram_bytes, options, key,
        )

    if not options.cache:
        return compute()
    # get_or_compute dedupes concurrent compilations of the same key
    # (duplicate builds in one compile_many batch, overlapping sweeps).
    return compile_cache.get_or_compute(key, compute)


def compile_key_for(build, options: Optional[CompileOptions] = None) -> str:
    """The cache key :func:`compile_program` will use for ``build``.

    Folds the build's ``scalar_args`` into ``options`` exactly the way
    ``api.compile_kernel`` + ``compile_program`` do, so callers that
    need the key without compiling (the serving runtime's cache-tier
    attribution and explicit disk persistence) can never diverge from
    the key the compile path caches under.
    """
    merged = _merge_options(options, build.scalar_args, None)
    return compile_key(
        build.spec,
        build.name,
        build.arg_shapes,
        build.arg_dtypes,
        build.total_flops,
        build.unique_dram_bytes,
        merged,
    )


def _merge_options(
    options: Optional[CompileOptions],
    scalar_args: Optional[Dict[str, Any]],
    use_tma: Optional[bool],
) -> CompileOptions:
    """Fold the legacy keyword arguments into a CompileOptions."""
    if options is None:
        options = CompileOptions()
    updates: Dict[str, Any] = {}
    if scalar_args is not None:
        updates["scalar_args"] = scalar_args
    if use_tma is not None:
        updates["use_tma"] = use_tma
    if updates:
        options = dataclasses.replace(options, **updates)
    return options


def _compile_uncached(
    spec: MappingSpec,
    name: str,
    arg_shapes: Sequence[Tuple[int, ...]],
    arg_dtypes: Sequence[DType],
    total_flops: float,
    unique_dram_bytes: float,
    options: CompileOptions,
    cache_key: str,
) -> CompiledKernel:
    analysis = DependenceAnalysis(spec, name)
    fn = analysis.run(arg_shapes, arg_dtypes, options.scalar_args)
    # Snapshot the pre-pass IR by cloning only the nodes passes mutate
    # (ops, blocks, events, buffers) — not a whole-module deepcopy.
    dependence_ir = clone_function(fn)

    ctx = PassContext(
        spec=spec,
        kernel_name=name,
        arg_shapes=arg_shapes,
        arg_dtypes=arg_dtypes,
        total_flops=total_flops,
        unique_dram_bytes=unique_dram_bytes,
        options=options,
        block_mapping=_block_instance(spec),
    )
    manager = PassManager(options.passes, verify=options.verify)
    trace = manager.run(fn, ctx)

    for artifact in ("allocation", "warpspec", "schedule", "cuda_source"):
        if artifact not in ctx.artifacts:
            raise CompileError(
                f"pass pipeline {manager.pass_names} produced no "
                f"{artifact!r} artifact; compile_program needs the full "
                "backend — use PassManager directly for partial pipelines"
            )

    return CompiledKernel(
        name=name,
        dependence_ir=dependence_ir,
        final_ir=fn,
        schedule=ctx.artifacts["schedule"],
        cuda_source=ctx.artifacts["cuda_source"],
        allocation=ctx.artifacts["allocation"],
        warpspec=ctx.artifacts["warpspec"],
        metadata={
            "machine": spec.machine.name,
            "entry": spec.entrypoint.instance,
            "pass_trace": trace,
            "cache_key": cache_key,
            "options": options,
        },
    )


def _block_instance(spec: MappingSpec) -> Optional[TaskMapping]:
    """The BLOCK-level instance carrying warpspec/pipeline directives.

    Prefers an instance that explicitly requests warp specialization or
    a pipeline; falls back to a BLOCK-level instance reached from the
    entrypoint. Candidates are sorted by instance name so the choice is
    deterministic (dict iteration order must not influence compiler
    output — the compile-cache key assumes reproducible compiles).
    """
    candidates = sorted(
        (
            m
            for m in spec.by_instance.values()
            if m.proc is ProcessorKind.BLOCK
            and (m.warpspecialize or m.pipeline > 1)
        ),
        key=lambda m: m.instance,
    )
    if candidates:
        return candidates[0]
    blocks = sorted(
        (
            m
            for m in spec.by_instance.values()
            if m.proc is ProcessorKind.BLOCK
        ),
        key=lambda m: m.instance,
    )
    return blocks[0] if blocks else None
