"""The pass pipeline driver (paper Figure 6).

``compile_program`` runs dependence analysis, vectorization, copy
elimination, shared-memory allocation, warp specialization with
pipelining, and both backends, verifying the IR between passes. The
result bundles every intermediate artifact so tests and tools can
inspect each stage.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.compiler.allocation import AllocationReport, allocate_shared
from repro.compiler.codegen_cuda import generate_cuda
from repro.compiler.codegen_sim import lower_to_schedule
from repro.compiler.copy_elim import eliminate_copies
from repro.compiler.dependence import DependenceAnalysis
from repro.compiler.vectorize import vectorize
from repro.compiler.warpspec import WarpSpecReport, specialize_warps
from repro.frontend.mapping import MappingSpec, TaskMapping
from repro.gpusim.kernel import KernelSchedule
from repro.ir.module import IRFunction
from repro.ir.verifier import verify_function
from repro.machine.processor import ProcessorKind
from repro.tensors.dtype import DType


@dataclass
class CompiledKernel:
    """Everything the compiler produced for one kernel instantiation."""

    name: str
    dependence_ir: IRFunction
    final_ir: IRFunction
    schedule: KernelSchedule
    cuda_source: str
    allocation: AllocationReport
    warpspec: WarpSpecReport
    metadata: Dict[str, Any] = field(default_factory=dict)


def compile_program(
    spec: MappingSpec,
    name: str,
    arg_shapes: Sequence[Tuple[int, ...]],
    arg_dtypes: Sequence[DType],
    total_flops: float,
    unique_dram_bytes: float,
    scalar_args: Optional[Dict[str, Any]] = None,
    use_tma: Optional[bool] = None,
) -> CompiledKernel:
    """Compile a mapped Cypress program for concrete argument shapes.

    Args:
        spec: the validated mapping specification (carries the registry
            and the target machine).
        name: kernel name for reports and generated code.
        arg_shapes / arg_dtypes: one entry per entrypoint tensor
            parameter.
        total_flops: useful arithmetic of the whole kernel, for TFLOP/s
            reporting.
        unique_dram_bytes: compulsory global traffic (the operands'
            footprint), for the HBM roofline.
        scalar_args: values for non-tensor entrypoint parameters.
        use_tma: force the copy mechanism; defaults to the machine's
            capability.
    """
    analysis = DependenceAnalysis(spec, name)
    fn = analysis.run(arg_shapes, arg_dtypes, scalar_args)
    verify_function(fn)
    dependence_ir = copy.deepcopy(fn)

    vectorize(fn)
    verify_function(fn)

    eliminate_copies(fn)
    verify_function(fn)

    block_mapping = _block_instance(spec)
    limit = spec.smem_limit(block_mapping) if block_mapping else None
    allocation = allocate_shared(fn, limit)

    warpspecialize = bool(block_mapping and block_mapping.warpspecialize)
    pipeline_depth = block_mapping.pipeline if block_mapping else 1
    warpspec = specialize_warps(
        fn, enabled=warpspecialize, pipeline_depth=pipeline_depth
    )

    schedule = lower_to_schedule(
        fn,
        spec.registry,
        total_flops=total_flops,
        unique_dram_bytes=unique_dram_bytes,
        use_tma=use_tma,
    )
    cuda_source = generate_cuda(fn)

    return CompiledKernel(
        name=name,
        dependence_ir=dependence_ir,
        final_ir=fn,
        schedule=schedule,
        cuda_source=cuda_source,
        allocation=allocation,
        warpspec=warpspec,
        metadata={
            "machine": spec.machine.name,
            "entry": spec.entrypoint.instance,
        },
    )


def _block_instance(spec: MappingSpec) -> Optional[TaskMapping]:
    """The BLOCK-level instance carrying warpspec/pipeline directives.

    Prefers an instance that explicitly requests warp specialization or
    a pipeline; falls back to the first BLOCK-level instance reached
    from the entrypoint.
    """
    candidates = [
        m
        for m in spec.by_instance.values()
        if m.proc is ProcessorKind.BLOCK
        and (m.warpspecialize or m.pipeline > 1)
    ]
    if candidates:
        return candidates[0]
    blocks = [
        m
        for m in spec.by_instance.values()
        if m.proc is ProcessorKind.BLOCK
    ]
    return blocks[0] if blocks else None
