"""Content-keyed compile cache.

A kernel compilation is a pure function of (mapping spec, argument
shapes/dtypes, machine, compile options): the logical program is reached
*through* the spec's registry, and mapping decisions plus machine
parameters determine every pass's output. The cache keys on a SHA-256
fingerprint of exactly those inputs, so recompiling an identical
instantiation — the common case in autotuning sweeps and repeated
benchmark runs — returns the previous :class:`CompiledKernel` without
executing a single pass.

The cache is a bounded LRU and is thread-safe: ``api.compile_many``
hits it concurrently from a thread pool. Cached kernels are shared
objects; treat them as immutable.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.frontend.mapping import MappingSpec, canonicalize
from repro.tensors.dtype import DType


@dataclass
class CacheStats:
    """Hit/miss counters since the last ``clear``."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


def compile_key(
    spec: MappingSpec,
    name: str,
    arg_shapes: Sequence[Tuple[int, ...]],
    arg_dtypes: Sequence[DType],
    total_flops: float,
    unique_dram_bytes: float,
    options: Any,
) -> str:
    """The content fingerprint of one kernel instantiation.

    ``spec.fingerprint()`` covers every mapping decision and the machine
    description; the remainder covers the concrete instantiation and the
    options that influence compiler output (``use_tma``, scalar
    arguments, the pass list). The verification policy is included even
    though it never changes what is built: a caller asking for
    verify-every-pass must not be handed a kernel that was cached
    unverified (and the cached ``pass_trace`` records which policy
    actually ran). Only the ``cache`` flag itself is excluded.
    """
    payload = repr(
        (
            spec.fingerprint(),
            name,
            tuple(tuple(shape) for shape in arg_shapes),
            tuple(dtype.name for dtype in arg_dtypes),
            float(total_flops),
            float(unique_dram_bytes),
            options.use_tma,
            canonicalize(options.scalar_args or {}),
            options.passes,
            options.verify.value,
        )
    ).encode()
    return hashlib.sha256(payload).hexdigest()


class CompileCache:
    """A bounded, thread-safe LRU of :class:`CompiledKernel` objects."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("compile cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._in_flight: dict = {}

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: str, kernel: Any) -> None:
        with self._lock:
            self._entries[key] = kernel
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def get_or_compute(self, key: str, compute) -> Any:
        """Return the cached kernel for ``key``, computing it at most
        once across threads.

        Concurrent callers with the same key (a batch compilation with
        duplicate builds, overlapping tuning sweeps) serialize on a
        per-key lock: one runs ``compute``, the rest wait and take the
        result as a hit instead of re-running the pass pipeline.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        with self._lock:
            key_lock = self._in_flight.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return self._entries[key]
            value = compute()
            self.put(key, value)
            with self._lock:
                self._in_flight.pop(key, None)
            return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._in_flight.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


#: The process-wide cache consulted by ``compile_program``.
compile_cache = CompileCache()
