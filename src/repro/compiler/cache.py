"""Content-keyed compile cache with a pluggable persistent tier.

A kernel compilation is a pure function of (mapping spec, argument
shapes/dtypes, machine, compile options): the logical program is reached
*through* the spec's registry, and mapping decisions plus machine
parameters determine every pass's output. The cache keys on a SHA-256
fingerprint of exactly those inputs, so recompiling an identical
instantiation — the common case in autotuning sweeps and repeated
benchmark runs — returns the previous :class:`CompiledKernel` without
executing a single pass.

The cache is a bounded LRU and is thread-safe: ``api.compile_many``
hits it concurrently from a thread pool. Capacity defaults to the
``REPRO_COMPILE_CACHE_SIZE`` environment variable (falling back to 256)
and can be changed at runtime with :meth:`CompileCache.resize`.

Below the in-memory LRU sits an optional **second tier**: any object
with ``load(key) -> kernel | None`` and ``store(key, kernel)`` (see
:class:`SecondTier`). The runtime attaches a persistent on-disk tier
(:class:`repro.runtime.diskcache.DiskCacheTier`) so a restarted server
warms from disk instead of recompiling; ``get_or_compute`` consults it
on a memory miss and writes freshly compiled kernels through to it.

Cached kernels are shared objects; treat them as immutable.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.frontend.mapping import MappingSpec, canonicalize
from repro.tensors.dtype import DType

#: Environment variable overriding the default in-memory capacity.
CACHE_SIZE_ENV = "REPRO_COMPILE_CACHE_SIZE"

#: Capacity used when the environment variable is unset.
DEFAULT_CAPACITY = 256


class SecondTier:
    """Structural interface of a second cache tier (duck-typed).

    Implementations must be thread-safe; ``load`` returns ``None`` on a
    miss (including unreadable/corrupt entries — a second tier must
    degrade to a recompile, never raise into the compile path).
    """

    def load(self, key: str) -> Optional[Any]:  # pragma: no cover
        raise NotImplementedError

    def store(self, key: str, kernel: Any) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass(repr=False)
class CacheStats:
    """Counters since the last ``clear`` plus the current capacity.

    ``hits`` are in-memory hits; ``second_tier_hits`` count lookups
    answered by the attached persistent tier (disk); ``misses`` ran the
    full pass pipeline. ``evictions`` counts LRU entries dropped because
    the cache was over capacity (from ``put`` or ``resize``). Every
    field is documented for dashboard consumers in ``docs/serving.md``.
    """

    hits: int = 0
    misses: int = 0
    second_tier_hits: int = 0
    evictions: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups: hits + misses + second-tier hits."""
        return self.hits + self.misses + self.second_tier_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without compiling (0.0–1.0)."""
        served = self.hits + self.second_tier_hits
        return served / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        from repro.util import fmt_percent

        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"second_tier_hits={self.second_tier_hits}, "
            f"evictions={self.evictions}, capacity={self.capacity}, "
            f"hit_rate={fmt_percent(self.hit_rate)})"
        )


def _capacity_from_env() -> int:
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw is None:
        return DEFAULT_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        raise ValueError(
            f"{CACHE_SIZE_ENV}={raw!r} is not an integer"
        ) from None
    if capacity < 1:
        raise ValueError(f"{CACHE_SIZE_ENV} must be >= 1, got {capacity}")
    return capacity


def compile_key(
    spec: MappingSpec,
    name: str,
    arg_shapes: Sequence[Tuple[int, ...]],
    arg_dtypes: Sequence[DType],
    total_flops: float,
    unique_dram_bytes: float,
    options: Any,
) -> str:
    """The content fingerprint of one kernel instantiation.

    ``spec.fingerprint()`` covers every mapping decision and the machine
    description; the remainder covers the concrete instantiation and the
    options that influence compiler output (``use_tma``, scalar
    arguments, the pass list). The verification policy is included even
    though it never changes what is built: a caller asking for
    verify-every-pass must not be handed a kernel that was cached
    unverified (and the cached ``pass_trace`` records which policy
    actually ran). Only the ``cache`` flag itself is excluded.
    """
    payload = repr(
        (
            spec.fingerprint(),
            name,
            tuple(tuple(shape) for shape in arg_shapes),
            tuple(dtype.name for dtype in arg_dtypes),
            float(total_flops),
            float(unique_dram_bytes),
            options.use_tma,
            canonicalize(options.scalar_args or {}),
            options.passes,
            options.verify.value,
        )
    ).encode()
    return hashlib.sha256(payload).hexdigest()


class CompileCache:
    """A bounded, thread-safe LRU of :class:`CompiledKernel` objects.

    ``capacity=None`` (the default) reads ``REPRO_COMPILE_CACHE_SIZE``
    from the environment, falling back to 256.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is None:
            capacity = _capacity_from_env()
        if capacity < 1:
            raise ValueError("compile cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats(capacity=capacity)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._in_flight: dict = {}
        self._second_tier: Optional[SecondTier] = None

    # ------------------------------------------------------------------
    # Second tier
    # ------------------------------------------------------------------
    @property
    def second_tier(self) -> Optional[SecondTier]:
        return self._second_tier

    def attach_second_tier(self, tier: SecondTier) -> Optional[SecondTier]:
        """Install ``tier`` below the in-memory LRU; returns the old one."""
        with self._lock:
            previous, self._second_tier = self._second_tier, tier
            return previous

    def detach_second_tier(self) -> Optional[SecondTier]:
        """Remove and return the attached second tier, if any."""
        with self._lock:
            tier, self._second_tier = self._second_tier, None
            return tier

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """In-memory lookup only (the second tier is consulted solely by
        :meth:`get_or_compute`, which can populate memory on a tier hit)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: str, kernel: Any) -> None:
        with self._lock:
            self._put_locked(key, kernel)

    def _put_locked(self, key: str, kernel: Any) -> None:
        self._entries[key] = kernel
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def resize(self, capacity: int) -> None:
        """Change the in-memory capacity, evicting LRU overflow."""
        if capacity < 1:
            raise ValueError("compile cache capacity must be >= 1")
        with self._lock:
            self.capacity = capacity
            self.stats.capacity = capacity
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: str, compute) -> Any:
        """Return the kernel for ``key``, computing it at most once
        across threads.

        Lookup order: in-memory LRU, then the attached second tier (a
        tier hit is promoted into memory), then ``compute``. Freshly
        computed kernels are written through to the second tier.
        Concurrent callers with the same key (a batch compilation with
        duplicate builds, overlapping tuning sweeps) serialize on a
        per-key lock: one runs ``compute``, the rest wait and take the
        result as a hit instead of re-running the pass pipeline.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            key_lock = self._in_flight.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return self._entries[key]
                tier = self._second_tier
            if tier is not None:
                value = tier.load(key)
                if value is not None:
                    with self._lock:
                        self.stats.second_tier_hits += 1
                        self._put_locked(key, value)
                        self._in_flight.pop(key, None)
                    return value
            with self._lock:
                self.stats.misses += 1
            value = compute()
            self.put(key, value)
            if tier is not None:
                tier.store(key, value)
            with self._lock:
                self._in_flight.pop(key, None)
            return value

    def clear(self) -> None:
        """Drop in-memory entries and counters (the second tier keeps
        its contents — persistent state survives a cache reset)."""
        with self._lock:
            self._entries.clear()
            self._in_flight.clear()
            self.stats = CacheStats(capacity=self.capacity)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


@dataclass
class ScoreStats:
    """Counters of the cost-model verdict memo.

    ``hits`` returned a memoized :class:`~repro.tuner.costmodel.
    CostEstimate`; ``misses`` ran the analytic model.
    """

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class ScoreCache:
    """Memoized cost-model verdicts, kept alongside the compile cache.

    The analytic cost model (:mod:`repro.tuner.costmodel`) is orders of
    magnitude cheaper than a compile, but tuning sweeps and
    ``RuntimeServer.warm`` re-score identical candidates constantly —
    the same (kernel, params, machine) triple shows up in every repeated
    sweep. Verdicts are pure functions of that triple, so they are
    memoized here under the same module as the compile cache: one place
    owns everything derived from a kernel instantiation's content.

    Keys are hashable tuples produced by ``AnalyticCostModel.score_key``
    (deliberately cheaper than the SHA-256 compile key: scoring costs
    microseconds, so hashing must too). The memo is a bounded LRU and is
    thread-safe.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("score cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = ScoreStats()
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get_or_score(self, key: Any, score) -> Any:
        """Return the memoized verdict for ``key``, computing via
        ``score()`` on a miss.

        Args:
            key: a hashable content key for the scored candidate.
            score: zero-argument callable producing the verdict.

        Returns:
            The memoized (or freshly computed) verdict object.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
        value = score()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop every memoized verdict and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = ScoreStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide cache consulted by ``compile_program``.
compile_cache = CompileCache()

#: The process-wide cost-model verdict memo consulted by the tuner.
score_cache = ScoreCache()
