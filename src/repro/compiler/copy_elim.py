"""Copy elimination (paper section 4.2.3, Figure 10).

Runs after vectorization, exactly as in the paper — flattening implicit
parallel loops first is what brings copy-in/copy-out pairs into the same
block so the spill patterns can see them.

The copy-in/copy-out discipline of the dependence analysis introduces a
fresh allocation and copies around every task launch; this pass rewrites
them away:

* **self copy elimination** (Fig. 10d) — ``copy(t, t)`` disappears.
* **round-trip (spill) elimination** (Fig. 10a) — a whole-temporary
  copy-in ``copy(R, T)`` paired with a copy-out ``copy(T, R)`` aliases
  ``T`` onto ``R``; both copies and their synchronization collapse,
  leaving only point-wise dependencies between the surrounding blocks.
* **copy-in forwarding** — a copy into a whole temporary in the same
  memory (or the virtual NONE memory) that is never written again is a
  renaming; later references recompose onto the source.
* **copy-out forwarding** — symmetric: a whole temporary drained by a
  single copy-out retargets its writers onto the destination.
* **duplicate elimination** (Fig. 10c) — a repeated copy with no
  intervening write is dropped, keeping the first copy's event.
* **spill hoisting** (Fig. 10b) — a loop-invariant copy-in/copy-out pair
  around a loop's working buffer moves to the loop preamble/postamble.

Spill patterns are ordered ahead of dependency-preserving patterns so
that event-array collapses are elided where the paper says they may be.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompileError
from repro.ir.events import BROADCAST, EventUse
from repro.ir.module import Buffer, IRFunction
from repro.ir.ops import Block, CallOp, CopyOp, ForOp, Operation, PForOp
from repro.machine.memory import MemoryKind
from repro.sym import ProcIndex
from repro.tensors.mma_partition import MmaPartition
from repro.tensors.partition import BlocksPartition, Partition
from repro.tensors.tensor import TensorRef


def eliminate_copies(fn: IRFunction, max_iterations: int = 500) -> IRFunction:
    """Apply the rewrite patterns to a fixed point."""
    for _ in range(max_iterations):
        if _apply_once(fn):
            continue
        return fn
    raise CompileError("copy elimination did not reach a fixed point")


def _apply_once(fn: IRFunction) -> bool:
    for pattern in (
        _self_copy,
        _roundtrip_alias,
        _forward_copy_in,
        _forward_copy_out,
        _duplicate_copy,
        _redundant_load,
        _spill_hoist,
        _invariant_copy_hoist,
    ):
        if _rewrite_blocks(fn, fn.body, pattern):
            return True
    return False


def _rewrite_blocks(fn: IRFunction, block: Block, pattern) -> bool:
    if pattern(fn, block):
        return True
    for op in block.ops:
        for nested in op.nested_blocks():
            if _rewrite_blocks(fn, nested, pattern):
                return True
    return False


# ----------------------------------------------------------------------
# Event forwarding
# ----------------------------------------------------------------------
def _adapt_use(pre: EventUse, outer: EventUse) -> EventUse:
    """Adapt a precondition use to stand in for an outer use.

    When the outer use broadcasts over some processor dimensions, the
    substituted precondition must broadcast over the same processors:
    point-wise processor indices introduced by vectorization are widened
    to BROADCAST in those dimensions.
    """
    broadcast_procs = {
        dim.proc
        for dim, index in zip(outer.event.type, outer.indices)
        if index is BROADCAST
    }
    if not broadcast_procs:
        return pre
    new_indices = []
    for index, dim in zip(pre.indices, pre.event.type):
        if (
            index is not BROADCAST
            and isinstance(index, ProcIndex)
            and dim.proc in broadcast_procs
        ):
            new_indices.append(BROADCAST)
        else:
            new_indices.append(index)
    return EventUse(pre.event, tuple(new_indices))


def _forward_event(fn: IRFunction, removed: Operation) -> None:
    """Redirect uses of a removed op's event onto its preconditions."""
    event = removed.result
    if event is None:
        return
    preconds = list(removed.preconds)

    def rewrite(uses: List[EventUse]) -> List[EventUse]:
        out: List[EventUse] = []
        for use in uses:
            if use.event is not event:
                if use not in out:
                    out.append(use)
                continue
            for pre in preconds:
                adapted = _adapt_use(pre, use)
                if adapted not in out:
                    out.append(adapted)
        return out

    for op in fn.walk():
        op.preconds = rewrite(op.preconds)
    for nested in _all_blocks(fn.body):
        if nested.yield_use is not None and nested.yield_use.event is event:
            if preconds:
                nested.yield_use = _adapt_use(
                    preconds[-1], nested.yield_use
                )
            else:
                nested.yield_use = _previous_event_use(nested, removed)


def _previous_event_use(block: Block, removed: Operation) -> Optional[EventUse]:
    previous = None
    for op in block.ops:
        if op is removed:
            break
        if op.result is not None:
            previous = op
    if previous is None or previous.result is None:
        return None
    if previous.result.is_unit:
        return previous.result.use()
    return previous.result.use_all()


def _all_blocks(block: Block):
    yield block
    for op in block.ops:
        for nested in op.nested_blocks():
            yield from _all_blocks(nested)


def _remove(fn: IRFunction, block: Block, op: Operation) -> None:
    _forward_event(fn, op)
    block.ops.remove(op)
    for nested in _all_blocks(fn.body):
        if nested.yield_use is not None and nested.yield_use.event is (
            op.result
        ):
            nested.yield_use = _previous_event_use(nested, op)


# ----------------------------------------------------------------------
# Reference rebasing
# ----------------------------------------------------------------------
def _rebase_partition(partition: Partition, source: TensorRef) -> Partition:
    if isinstance(partition, BlocksPartition):
        return BlocksPartition(source, partition.block_shape)
    if isinstance(partition, MmaPartition):
        return MmaPartition(
            source, partition.atom, partition.proc, partition.operand
        )
    from repro.tensors.partition import SqueezePartition

    if isinstance(partition, SqueezePartition):
        return SqueezePartition(source)
    raise CompileError(f"cannot rebase partition kind {partition.kind!r}")


def _compose_ref(base: TensorRef, sub: TensorRef) -> TensorRef:
    """Re-root ``sub`` (a reference into a temporary) onto ``base``."""
    result = base
    for partition, index in sub.path:
        rebased = _rebase_partition(partition, result)
        result = TensorRef(result.root, result.path + ((rebased, index),))
    return result


def _replace_buffer_refs(fn: IRFunction, buffer: Buffer, base: TensorRef) -> None:
    uid = buffer.tensor.uid

    def rewrite(ref: TensorRef) -> TensorRef:
        if ref.root.uid != uid:
            return ref
        return _compose_ref(base, ref)

    for op in fn.walk():
        if isinstance(op, CopyOp):
            op.src = rewrite(op.src)
            op.dst = rewrite(op.dst)
        elif isinstance(op, CallOp):
            op.args = tuple(
                rewrite(a) if isinstance(a, TensorRef) else a
                for a in op.args
            )
            op.reads = tuple(rewrite(r) for r in op.reads)
            op.writes = tuple(rewrite(w) for w in op.writes)


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
def _self_copy(fn: IRFunction, block: Block) -> bool:
    for op in block.ops:
        if not isinstance(op, CopyOp):
            continue
        if op.src.root.uid == op.dst.root.uid and _same_path(op.src, op.dst):
            _remove(fn, block, op)
            return True
    return False


def _is_renamable_temp(fn: IRFunction, ref: TensorRef) -> Optional[Buffer]:
    """The buffer behind a whole, non-argument reference (else None)."""
    if not ref.is_whole:
        return None
    buffer = fn.buffers.get(ref.root.uid)
    if buffer is None or buffer.is_argument:
        return None
    return buffer


def _memory_compatible(temp: Buffer, other: TensorRef, fn: IRFunction) -> bool:
    if temp.memory is MemoryKind.NONE:
        return True
    counterpart = fn.buffers.get(other.root.uid)
    return counterpart is not None and counterpart.memory is temp.memory


def _roundtrip_alias(fn: IRFunction, block: Block) -> bool:
    """Figure 10a: alias a copy-in/copy-out temporary onto its source.

    Safe because the dependence analysis gave the launch exclusive
    (read-write) access to the source for the whole span between the two
    copies, so no other reader observes the intermediate states.
    """
    for i, cin in enumerate(block.ops):
        if not isinstance(cin, CopyOp):
            continue
        temp = _is_renamable_temp(fn, cin.dst)
        if temp is None or not _memory_compatible(temp, cin.src, fn):
            continue
        for cout in block.ops[i + 1 :]:
            if not isinstance(cout, CopyOp):
                continue
            if cout.src.root.uid != temp.tensor.uid or not cout.src.is_whole:
                continue
            if cout.dst.root.uid != cin.src.root.uid or not _same_path(
                cout.dst, cin.src
            ):
                continue
            _remove(fn, block, cout)
            _remove(fn, block, cin)
            _replace_buffer_refs(fn, temp, cin.src)
            return True
    return False


def _forward_copy_in(fn: IRFunction, block: Block) -> bool:
    for op in block.ops:
        if not isinstance(op, CopyOp):
            continue
        temp = _is_renamable_temp(fn, op.dst)
        if temp is None or not _memory_compatible(temp, op.src, fn):
            continue
        if _write_count(fn, temp) != 1:
            continue
        _remove(fn, block, op)
        _replace_buffer_refs(fn, temp, op.src)
        return True
    return False


def _forward_copy_out(fn: IRFunction, block: Block) -> bool:
    for op in block.ops:
        if not isinstance(op, CopyOp):
            continue
        temp = _is_renamable_temp(fn, op.src)
        if temp is None or not _memory_compatible(temp, op.dst, fn):
            continue
        if _read_count(fn, temp) != 1:
            continue
        _remove(fn, block, op)
        _replace_buffer_refs(fn, temp, op.dst)
        return True
    return False


def _duplicate_copy(fn: IRFunction, block: Block) -> bool:
    for i, first in enumerate(block.ops):
        if not isinstance(first, CopyOp):
            continue
        for second in block.ops[i + 1 :]:
            if isinstance(second, CopyOp) and _same_copy(first, second):
                # Users of the duplicate wait on the first copy instead.
                surviving = (
                    first.result.use_all()
                    if first.result.type
                    else first.result.use()
                )
                second.preconds = [surviving]
                _remove(fn, block, second)
                return True
            if _writes_buffer(second, first.src.root.uid) or _writes_buffer(
                second, first.dst.root.uid
            ):
                break
    return False


def _redundant_load(fn: IRFunction, block: Block) -> bool:
    """Figure 10c generalized: two loads of the same data into distinct
    whole temporaries in the same memory share one allocation.

    This is what leaves Dual-GEMM with a single A-tile load per K step:
    both multiplications' copy-ins read the same ``Ap[0, k]``.
    """
    for i, first in enumerate(block.ops):
        if not isinstance(first, CopyOp):
            continue
        first_temp = _is_renamable_temp(fn, first.dst)
        if first_temp is None or _write_count(fn, first_temp) != 1:
            continue
        for second in block.ops[i + 1 :]:
            if _writes_buffer(second, first.src.root.uid):
                break
            if not isinstance(second, CopyOp):
                continue
            if second.src.root.uid != first.src.root.uid:
                continue
            if not _same_path(second.src, first.src):
                continue
            second_temp = _is_renamable_temp(fn, second.dst)
            if second_temp is None or second_temp is first_temp:
                continue
            if second_temp.memory is not first_temp.memory:
                continue
            if _write_count(fn, second_temp) != 1:
                continue
            # Consumers of the removed load must still wait on the
            # surviving load's completion.
            surviving = (
                first.result.use_all()
                if first.result.type
                else first.result.use()
            )
            second.preconds = [surviving]
            _remove(fn, block, second)
            _replace_buffer_refs(fn, second_temp, first.dst)
            return True
    return False


def _spill_hoist(fn: IRFunction, block: Block) -> bool:
    """Figure 10b: hoist a loop-invariant copy round trip out of a loop.

    Matches ``copy(P, t) ... copy(t, P)`` inside a ``for`` body where
    both references are loop-index free and ``P`` has no other uses in
    the body; the pair becomes a preamble/postamble around the loop.
    """
    for position, loop in enumerate(block.ops):
        if not isinstance(loop, ForOp):
            continue
        body = loop.body
        for cin in body.ops:
            if not isinstance(cin, CopyOp):
                continue
            if loop.index.name in cin.src.free_variables():
                continue
            if loop.index.name in cin.dst.free_variables():
                continue
            cout = _matching_copy_out(body, cin)
            if cout is None:
                continue
            if _other_uses_in_body(body, cin, cout, cin.src.root.uid):
                continue
            body.ops.remove(cin)
            body.ops.remove(cout)
            if body.yield_use is not None and body.yield_use.event in (
                cin.result,
                cout.result,
            ):
                body.yield_use = _previous_event_use(body, cout)
            # The copy-in keeps only loop-external preconditions and the
            # loop adds a dependence on it; in-body consumers of the
            # copy-in's event still reference it (now defined earlier).
            cin.preconds = [
                use
                for use in cin.preconds
                if not _defined_in(body, use)
            ]
            block.ops.insert(position, cin)
            position += 1
            # The copy-out waits for the loop to complete, plus any
            # loop-external anti-dependencies it already carried.
            external = [
                use for use in cout.preconds if not _defined_in(body, use)
            ]
            cout.preconds = external + [loop.result.use()]
            block.ops.insert(position + 1, cout)
            if cin.result is not None:
                use = (
                    cin.result.use_all()
                    if cin.result.type
                    else cin.result.use()
                )
                if use not in loop.preconds:
                    loop.preconds.append(use)
            return True
    return False


def _invariant_copy_hoist(fn: IRFunction, block: Block) -> bool:
    """Hoist a loop-invariant read-only copy-in out of a loop.

    A copy whose source and destination are loop-index free, whose
    destination is written by nothing else, and whose source is not
    written inside the loop produces the same bytes every iteration —
    it moves to the loop preamble (e.g. the Q tile of Flash Attention,
    loaded once and reused across all KV iterations).
    """
    for position, loop in enumerate(block.ops):
        if not isinstance(loop, ForOp):
            continue
        body = loop.body
        for cin in body.ops:
            if not isinstance(cin, CopyOp):
                continue
            if loop.index.name in cin.src.free_variables():
                continue
            if loop.index.name in cin.dst.free_variables():
                continue
            dst_buffer = fn.buffers.get(cin.dst.root.uid)
            if dst_buffer is None or dst_buffer.is_argument:
                continue
            if _write_count(fn, dst_buffer) != 1:
                continue
            src_written = any(
                _writes_buffer(op, cin.src.root.uid)
                for op in body.walk()
                if op is not cin
            )
            if src_written:
                continue
            body.ops.remove(cin)
            if body.yield_use is not None and body.yield_use.event is (
                cin.result
            ):
                body.yield_use = _previous_event_use(body, cin)
            cin.preconds = [
                use for use in cin.preconds if not _defined_in(body, use)
            ]
            block.ops.insert(position, cin)
            if cin.result is not None:
                use = (
                    cin.result.use_all()
                    if cin.result.type
                    else cin.result.use()
                )
                if use not in loop.preconds:
                    loop.preconds.append(use)
            return True
    return False


def _matching_copy_out(body: Block, cin: CopyOp) -> Optional[CopyOp]:
    seen_cin = False
    for op in body.ops:
        if op is cin:
            seen_cin = True
            continue
        if not seen_cin or not isinstance(op, CopyOp):
            continue
        if (
            op.src.root.uid == cin.dst.root.uid
            and _same_path(op.src, cin.dst)
            and op.dst.root.uid == cin.src.root.uid
            and _same_path(op.dst, cin.src)
        ):
            return op
    return None


def _other_uses_in_body(
    body: Block, cin: CopyOp, cout: CopyOp, uid: int
) -> bool:
    for op in body.walk():
        if op is cin or op is cout:
            continue
        for ref in op.tensor_uses():
            if ref.root.uid == uid:
                return True
    return False


def _defined_in(body: Block, use: EventUse) -> bool:
    for op in body.walk():
        if op.result is use.event:
            return True
    return False


# ----------------------------------------------------------------------
# Structural helpers
# ----------------------------------------------------------------------
def _same_path(a: TensorRef, b: TensorRef) -> bool:
    if len(a.path) != len(b.path):
        return False
    for (pa, ia), (pb, ib) in zip(a.path, b.path):
        if type(pa) is not type(pb) or ia != ib:
            return False
        if isinstance(pa, BlocksPartition):
            if pa.block_shape != pb.block_shape:
                return False
        if isinstance(pa, MmaPartition):
            if (pa.atom, pa.proc, pa.operand) != (
                pb.atom,
                pb.proc,
                pb.operand,
            ):
                return False
    return True


def _same_copy(a: CopyOp, b: CopyOp) -> bool:
    return (
        a.src.root.uid == b.src.root.uid
        and a.dst.root.uid == b.dst.root.uid
        and _same_path(a.src, b.src)
        and _same_path(a.dst, b.dst)
    )


def _writes_buffer(op: Operation, uid: int) -> bool:
    if isinstance(op, CopyOp):
        return op.dst.root.uid == uid
    if isinstance(op, CallOp):
        return any(w.root.uid == uid for w in op.writes)
    if isinstance(op, (ForOp, PForOp)):
        return any(_writes_buffer(inner, uid) for inner in op.body.walk())
    return False


def _write_count(fn: IRFunction, buffer: Buffer) -> int:
    uid = buffer.tensor.uid
    count = 0
    for op in fn.walk():
        if isinstance(op, CopyOp) and op.dst.root.uid == uid:
            count += 1
        elif isinstance(op, CallOp):
            count += sum(1 for w in op.writes if w.root.uid == uid)
    return count


def _read_count(fn: IRFunction, buffer: Buffer) -> int:
    uid = buffer.tensor.uid
    count = 0
    for op in fn.walk():
        if isinstance(op, CopyOp) and op.src.root.uid == uid:
            count += 1
        elif isinstance(op, CallOp):
            count += sum(1 for r in op.reads if r.root.uid == uid)
    return count
