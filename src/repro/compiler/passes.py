"""The pass manager: the compiler pipeline as data (paper Figure 6).

The paper's pipeline was originally a hardcoded straight-line driver.
This module makes it explicit: every compiler stage is a named
:class:`Pass` in :data:`PASS_REGISTRY`, and a :class:`PassManager` runs
an ordered list of them over the IR with per-pass wall-time and IR-size
instrumentation and a configurable verification policy. The resulting
:class:`PassTrace` is attached to ``CompiledKernel.metadata`` so tools
(and the autotuner) can see where compile time goes.

Passes communicate through a :class:`PassContext`: IR-mutating passes
rewrite the :class:`~repro.ir.module.IRFunction` in place, while
artifact-producing passes (allocation, warp specialization, both
backends) deposit their reports into ``ctx.artifacts``.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.compiler.allocation import allocate_shared
from repro.compiler.codegen_cuda import generate_cuda
from repro.compiler.codegen_sim import lower_to_schedule
from repro.compiler.copy_elim import eliminate_copies
from repro.compiler.vectorize import vectorize
from repro.compiler.warpspec import specialize_warps
from repro.errors import CompileError
from repro.frontend.mapping import MappingSpec, TaskMapping
from repro.ir.module import IRFunction
from repro.ir.verifier import verify_function
from repro.tensors.dtype import DType


class VerifyPolicy(enum.Enum):
    """When the pass manager runs the IR verifier.

    ``EVERY_PASS`` verifies the input IR and the IR after each mutating
    pass (the paper's debug discipline); ``ENDS`` verifies only the
    input and the final IR; ``NEVER`` skips verification entirely (for
    trusted autotuning sweeps where throughput matters).
    """

    EVERY_PASS = "every-pass"
    ENDS = "ends"
    NEVER = "never"


@dataclass
class CompileOptions:
    """Everything that parameterizes one compilation, besides the build.

    Attributes:
        use_tma: force the bulk-copy mechanism; ``None`` defers to the
            machine's capability.
        scalar_args: values for non-tensor entrypoint parameters.
        verify: the :class:`VerifyPolicy` (strings are coerced).
        cache: consult/populate the global compile cache.
        passes: override the pass list by registry name; ``None`` runs
            :data:`DEFAULT_PIPELINE`.
    """

    use_tma: Optional[bool] = None
    scalar_args: Optional[Dict[str, Any]] = None
    verify: Union[VerifyPolicy, str] = VerifyPolicy.EVERY_PASS
    cache: bool = True
    passes: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        self.verify = VerifyPolicy(self.verify)
        if self.passes is not None:
            self.passes = tuple(self.passes)


@dataclass
class PassContext:
    """Shared state threaded through one pass-manager run."""

    spec: MappingSpec
    kernel_name: str
    arg_shapes: Sequence[Tuple[int, ...]]
    arg_dtypes: Sequence[DType]
    total_flops: float
    unique_dram_bytes: float
    options: CompileOptions
    block_mapping: Optional[TaskMapping] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)


@dataclass
class PassRecord:
    """Instrumentation for one executed pass.

    ``started_at_s`` is the pass's start on the process-wide
    ``time.perf_counter`` clock — the same clock trace spans use — so
    observability can lift each record into a child span of the
    enclosing compile without re-timing anything.
    """

    name: str
    wall_time_s: float
    ops_before: int
    ops_after: int
    started_at_s: float = 0.0


@dataclass
class PassTrace:
    """The structured result of one pass-manager run."""

    pass_names: Tuple[str, ...]
    verify_policy: VerifyPolicy
    records: List[PassRecord] = field(default_factory=list)
    verified_after: List[str] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(record.wall_time_s for record in self.records)

    def summary(self) -> str:
        """A human-readable per-pass timing/size table."""
        lines = [f"{'pass':<16} {'time (ms)':>10} {'ops':>12}"]
        for record in self.records:
            lines.append(
                f"{record.name:<16} {1e3 * record.wall_time_s:>10.2f} "
                f"{record.ops_before:>5} -> {record.ops_after}"
            )
        lines.append(
            f"{'total':<16} {1e3 * self.total_time_s:>10.2f} "
            f"(verify: {self.verify_policy.value}, "
            f"{len(self.verified_after)} checks)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Pass registry
# ----------------------------------------------------------------------
class Pass:
    """One compiler stage. Subclasses set ``name`` and override ``run``.

    ``mutates_ir`` tells the manager whether the pass rewrites the
    function (and therefore needs re-verification under
    ``VerifyPolicy.EVERY_PASS``); backend passes only read the IR.
    """

    name: str = "<unnamed>"
    mutates_ir: bool = True

    def run(self, fn: IRFunction, ctx: PassContext) -> None:
        raise NotImplementedError


PASS_REGISTRY: Dict[str, Type[Pass]] = {}


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator adding a pass to the global registry by name."""
    if cls.name in PASS_REGISTRY:
        raise CompileError(f"duplicate pass registration: {cls.name!r}")
    PASS_REGISTRY[cls.name] = cls
    return cls


def build_pass(name: str) -> Pass:
    """Instantiate a registered pass, with a helpful unknown-name error."""
    if name not in PASS_REGISTRY:
        raise CompileError(
            f"unknown pass {name!r}; registered passes: "
            f"{sorted(PASS_REGISTRY)}"
        )
    return PASS_REGISTRY[name]()


@register_pass
class VectorizePass(Pass):
    """Flatten intra-block parallel loops into vectorized ops."""

    name = "vectorize"

    def run(self, fn: IRFunction, ctx: PassContext) -> None:
        vectorize(fn)


@register_pass
class CopyElimPass(Pass):
    """Remove copy-in/copy-out noise left by dependence analysis."""

    name = "copy-elim"

    def run(self, fn: IRFunction, ctx: PassContext) -> None:
        eliminate_copies(fn)


@register_pass
class AllocateSharedPass(Pass):
    """Interference-based shared-memory allocation (section 4.2.4)."""

    name = "allocate-shared"

    def run(self, fn: IRFunction, ctx: PassContext) -> None:
        limit = (
            ctx.spec.smem_limit(ctx.block_mapping)
            if ctx.block_mapping
            else None
        )
        ctx.artifacts["allocation"] = allocate_shared(fn, limit)


@register_pass
class WarpSpecializePass(Pass):
    """Warp specialization + software pipelining (section 4.2.5)."""

    name = "warp-specialize"

    def run(self, fn: IRFunction, ctx: PassContext) -> None:
        block = ctx.block_mapping
        ctx.artifacts["warpspec"] = specialize_warps(
            fn,
            enabled=bool(block and block.warpspecialize),
            pipeline_depth=block.pipeline if block else 1,
        )


@register_pass
class LowerSchedulePass(Pass):
    """Simulator backend: lower the final IR to a KernelSchedule."""

    name = "lower-schedule"
    mutates_ir = False

    def run(self, fn: IRFunction, ctx: PassContext) -> None:
        ctx.artifacts["schedule"] = lower_to_schedule(
            fn,
            ctx.spec.registry,
            total_flops=ctx.total_flops,
            unique_dram_bytes=ctx.unique_dram_bytes,
            use_tma=ctx.options.use_tma,
        )


@register_pass
class CodegenCudaPass(Pass):
    """CUDA backend: emit the warp-specialized C++ kernel text."""

    name = "codegen-cuda"
    mutates_ir = False

    def run(self, fn: IRFunction, ctx: PassContext) -> None:
        ctx.artifacts["cuda_source"] = generate_cuda(fn)


#: The Figure-6 pipeline, in order. Dependence analysis runs before the
#: pass manager (it *creates* the IR from the mapped task tree).
DEFAULT_PIPELINE: Tuple[str, ...] = (
    "vectorize",
    "copy-elim",
    "allocate-shared",
    "warp-specialize",
    "lower-schedule",
    "codegen-cuda",
)


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
_counter_lock = threading.Lock()
_pass_executions = 0


def pass_execution_count() -> int:
    """Total passes executed process-wide (cache tests key off this)."""
    return _pass_executions


def _ir_size(fn: IRFunction) -> int:
    return sum(1 for _ in fn.walk())


#: Cached handle on the sampling profiler's phase tracker. Resolved on
#: first PassManager.run: the compiler stack must stay importable
#: without repro.obs.profiler (which transitively pulls in the
#: runtime), so the hook binds lazily and degrades to None forever if
#: the import fails.
_PHASES = None


def _phase_tracker():
    global _PHASES
    if _PHASES is None:
        try:
            from repro.obs.profiler import PHASES as tracker
        except Exception:  # pragma: no cover - profiler unavailable
            tracker = False
        _PHASES = tracker
    return _PHASES or None


class PassManager:
    """Runs an ordered list of passes with instrumentation.

    Args:
        passes: registry names or :class:`Pass` instances; ``None``
            means :data:`DEFAULT_PIPELINE`.
        verify: a :class:`VerifyPolicy` or its string value.
    """

    def __init__(
        self,
        passes: Optional[Sequence[Union[str, Pass]]] = None,
        verify: Union[VerifyPolicy, str] = VerifyPolicy.EVERY_PASS,
    ):
        if passes is None:
            passes = DEFAULT_PIPELINE
        self.passes: List[Pass] = [
            p if isinstance(p, Pass) else build_pass(p) for p in passes
        ]
        self.verify = VerifyPolicy(verify)

    @property
    def pass_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def run(self, fn: IRFunction, ctx: PassContext) -> PassTrace:
        """Execute every pass over ``fn``, returning the trace."""
        global _pass_executions
        trace = PassTrace(
            pass_names=self.pass_names, verify_policy=self.verify
        )
        if self.verify is not VerifyPolicy.NEVER:
            verify_function(fn)
            trace.verified_after.append("input")
        phases = _phase_tracker()
        for p in self.passes:
            ops_before = _ir_size(fn)
            start = time.perf_counter()
            if phases is not None and phases.enabled:
                phases.push(f"pass.{p.name}")
                try:
                    p.run(fn, ctx)
                finally:
                    phases.pop()
            else:
                p.run(fn, ctx)
            elapsed = time.perf_counter() - start
            with _counter_lock:
                _pass_executions += 1
            trace.records.append(
                PassRecord(
                    name=p.name,
                    wall_time_s=elapsed,
                    ops_before=ops_before,
                    ops_after=_ir_size(fn),
                    started_at_s=start,
                )
            )
            if self.verify is VerifyPolicy.EVERY_PASS and p.mutates_ir:
                verify_function(fn)
                trace.verified_after.append(p.name)
        if self.verify is VerifyPolicy.ENDS:
            verify_function(fn)
            trace.verified_after.append("output")
        return trace
