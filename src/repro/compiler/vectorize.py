"""Vectorization (paper section 4.2.2, Figure 9).

Flattens the parallel loops that are implicit in the GPU programming
model — ``pfor`` loops over warpgroups, warps, and threads. The loop
index is substituted with the processor-index expression of that level,
events produced inside the loop are promoted with an extra dimension
annotated by the flattened level, and consumers are rewritten so that
point-wise dependencies index with the processor index while post-loop
synchronizations index with the broadcast operator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import CompileError
from repro.ir.events import BROADCAST, Event, EventDim, EventUse
from repro.ir.module import Buffer, IRFunction
from repro.ir.ops import AllocOp, Block, CallOp, CopyOp, ForOp, Operation, PForOp
from repro.machine.processor import ProcessorKind, is_intra_block
from repro.sym import Const, ProcIndex, substitute
from repro.tensors.tensor import TensorRef


def vectorize(fn: IRFunction) -> IRFunction:
    """Flatten all intra-block parallel loops, innermost first."""
    changed = True
    while changed:
        changed = _flatten_one(fn.body, fn)
    return fn


def _flatten_one(block: Block, fn: IRFunction) -> bool:
    """Find and flatten one innermost intra-block pfor; True if found."""
    for op in block.ops:
        for nested in op.nested_blocks():
            if _flatten_one(nested, fn):
                return True
    for position, op in enumerate(block.ops):
        if isinstance(op, PForOp) and is_intra_block(op.proc):
            if _contains_intra_block_pfor(op.body):
                continue  # not innermost; the recursion will reach it
            _flatten(block, position, op, fn)
            return True
    return False


def _contains_intra_block_pfor(block: Block) -> bool:
    for op in block.walk():
        if isinstance(op, PForOp) and is_intra_block(op.proc):
            return True
    return False


def _flatten(block: Block, position: int, loop: PForOp, fn: IRFunction) -> None:
    proc = loop.proc
    extents = fn.metadata.setdefault("proc_extents", {})
    if extents.get(proc.value, loop.extent) != loop.extent:
        raise CompileError(
            f"inconsistent {proc.name} extents: {extents[proc.value]} vs "
            f"{loop.extent}; all parallel loops over one level must agree"
        )
    extents[proc.value] = loop.extent
    dim = EventDim(loop.extent, proc)
    index_sub = {loop.index.name: ProcIndex(proc.value)}
    body_ops = list(loop.body.ops)
    promoted: Dict[int, Event] = {}

    # Promote every event defined in the loop body (at any depth) and
    # substitute the induction variable throughout.
    for op in loop.body.walk():
        _substitute_op(op, index_sub)
        if op.result is not None:
            op.result.type = (dim,) + op.result.type
            promoted[id(op.result)] = op.result

    # Rewrite uses of promoted events.
    point_index = ProcIndex(proc.value)
    for op in loop.body.walk():
        op.preconds = [
            _adjust_use(use, promoted, point_index) for use in op.preconds
        ]
    for nested in _blocks_under(loop.body):
        if nested.yield_use is not None:
            nested.yield_use = _adjust_use(
                nested.yield_use, promoted, point_index
            )

    # Loop-level preconditions apply to every former body operation.
    for op in body_ops:
        for use in loop.preconds:
            if use not in op.preconds:
                op.preconds.append(use)

    # Mark per-iteration buffers as replicated across this level. A
    # buffer whose references all live inside the flattened loop is
    # private to each iteration's processor: each thread's register
    # fragment is a distinct physical object even though the IR has a
    # single buffer for it. Buffers also referenced outside the loop
    # (like a shared-memory tile filled at block scope) stay shared.
    inside_ops = set()
    candidates = set()
    for op in loop.body.walk():
        inside_ops.add(id(op))
        if isinstance(op, AllocOp):
            _replicate_buffer(op.buffer, loop.extent, proc)
        for ref in op.tensor_uses():
            buffer = fn.buffers.get(ref.root.uid)
            if buffer is None or buffer.is_argument:
                continue
            candidates.add(ref.root.uid)
            _note_level(buffer, proc)
    escaped = set()
    for op in fn.walk():
        if id(op) in inside_ops:
            continue
        for ref in op.tensor_uses():
            if ref.root.uid in candidates:
                escaped.add(ref.root.uid)
    for uid in candidates - escaped:
        buffer = fn.buffers[uid]
        private = getattr(buffer, "private_levels", set())
        private.add(proc.value)
        buffer.private_levels = private

    # Splice the body into the parent block.
    block.ops[position : position + 1] = body_ops

    # Redirect uses of the loop's own event to the promoted yield event.
    yield_use = loop.body.yield_use
    if yield_use is None:
        if loop.result is not None and _event_used(fn, loop.result):
            raise CompileError(
                f"pfor over {proc.name} yields nothing but its event is used"
            )
        return
    _redirect_loop_event(fn, loop, yield_use)


def _blocks_under(block: Block):
    yield block
    for op in block.ops:
        for nested in op.nested_blocks():
            yield from _blocks_under(nested)


def _substitute_op(op: Operation, bindings: Dict[str, object]) -> None:
    def sub_ref(ref: TensorRef) -> TensorRef:
        path = tuple(
            (partition, tuple(substitute(e, bindings) for e in index))
            for partition, index in ref.path
        )
        return TensorRef(ref.root, path)

    if isinstance(op, CopyOp):
        op.src = sub_ref(op.src)
        op.dst = sub_ref(op.dst)
    elif isinstance(op, CallOp):
        op.args = tuple(
            sub_ref(a) if isinstance(a, TensorRef) else a for a in op.args
        )
        op.reads = tuple(sub_ref(r) for r in op.reads)
        op.writes = tuple(sub_ref(w) for w in op.writes)
    for use in op.preconds:
        use.indices = tuple(
            i if i is BROADCAST else substitute(i, bindings)
            for i in use.indices
        )


def _adjust_use(
    use: EventUse, promoted: Dict[int, Event], point_index
) -> EventUse:
    if id(use.event) in promoted:
        return EventUse(use.event, (point_index,) + use.indices)
    return use


def _redirect_loop_event(
    fn: IRFunction, loop: PForOp, yield_use: EventUse
) -> None:
    """Map external uses ``loop_event[i]`` onto the promoted yield event.

    The yield use already carries a leading point-wise index from
    promotion; an external use with index ``i`` re-binds that leading
    position to ``i`` (BROADCAST included), preserving the remaining
    yield indices.
    """
    target = yield_use.event
    trailing = yield_use.indices[1:]
    old = loop.result

    def rewrite(use: EventUse) -> EventUse:
        if use.event is not old:
            return use
        (leading,) = use.indices  # pfor events always have rank 1
        return EventUse(target, (leading,) + trailing)

    for op in fn.walk():
        op.preconds = [rewrite(use) for use in op.preconds]
    for nested in _blocks_under(fn.body):
        if nested.yield_use is not None:
            nested.yield_use = rewrite(nested.yield_use)


def _event_used(fn: IRFunction, event: Event) -> bool:
    for op in fn.walk():
        if any(use.event is event for use in op.preconds):
            return True
    for nested in _blocks_under(fn.body):
        if nested.yield_use is not None and nested.yield_use.event is event:
            return True
    return False


def _replicate_buffer(buffer: Buffer, extent: int, proc: ProcessorKind) -> None:
    replication = getattr(buffer, "replication", ())
    buffer.replication = ((extent, proc),) + tuple(replication)


def _note_level(buffer: Buffer, proc: ProcessorKind) -> None:
    levels = getattr(buffer, "used_at_levels", set())
    levels.add(proc)
    buffer.used_at_levels = levels
