"""Warp specialization and software pipelining (paper section 4.2.5).

Warp specialization partitions the block-level dependence graph between
a data-movement (DMA) warp and the compute warpgroups: all copies whose
source lives in global memory and destination in shared memory (and the
TMA stores back out) are assigned to the DMA warp; every other operation
belongs to the compute warpgroups. Dependence edges crossing the
partition become barrier synchronizations in generated code (Figure 12).

Pipelining unrolls a loop's dependence graph to the requested depth and
compacts it back, which in our IR amounts to: multi-buffering every
shared tile written by a DMA copy inside the loop (the ``PIPE``
dimension of Figure 1b) and recording backward write-after-read
dependencies so an asynchronous copy for iteration ``k`` begins only
after the consumers of its destination buffer finished iteration
``k - PIPE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.ir.module import Buffer, IRFunction
from repro.ir.ops import Block, CallOp, CopyOp, ForOp, Operation, PForOp
from repro.machine.memory import MemoryKind

DMA = "dma"
COMPUTE = "compute"


@dataclass
class WarpSpecReport:
    """Summary stored in ``fn.metadata['warpspec']``."""

    enabled: bool
    pipeline_depth: int
    dma_ops: int = 0
    compute_ops: int = 0
    crossing_edges: int = 0
    pipelined_buffers: List[str] = field(default_factory=list)


def specialize_warps(
    fn: IRFunction,
    enabled: bool = True,
    pipeline_depth: int = 1,
) -> WarpSpecReport:
    """Assign warp roles and pipeline the block-level main loops."""
    report = WarpSpecReport(enabled=enabled, pipeline_depth=pipeline_depth)
    body = block_body(fn)
    for op in body.walk():
        op.role = _role_of(fn, op) if enabled else COMPUTE
        if op.role == DMA:
            report.dma_ops += 1
        else:
            report.compute_ops += 1
    report.crossing_edges = _count_crossing_edges(body)
    for op in body.ops:
        if isinstance(op, ForOp):
            pipelined = _pipeline_loop(fn, op, pipeline_depth)
            report.pipelined_buffers.extend(pipelined)
    fn.metadata["warpspec"] = report
    return report


def block_body(fn: IRFunction) -> Block:
    """The per-thread-block body: inside the grid ``pfor`` nest."""
    block = fn.body
    while True:
        grid_loops = [
            op
            for op in block.ops
            if isinstance(op, PForOp)
            and op.proc.name == "BLOCK"
        ]
        if not grid_loops:
            return block
        if len(grid_loops) > 1:
            raise CompileError(
                "multiple grid-level parallel loops in one block; "
                "fuse them in the logical description"
            )
        block = grid_loops[0].body


def _role_of(fn: IRFunction, op: Operation) -> str:
    if isinstance(op, CopyOp):
        src = fn.buffers.get(op.src.root.uid)
        dst = fn.buffers.get(op.dst.root.uid)
        if src is None or dst is None:
            return COMPUTE
        if src.memory is MemoryKind.GLOBAL and dst.memory is (
            MemoryKind.SHARED
        ):
            return DMA
        if src.memory is MemoryKind.SHARED and dst.memory is (
            MemoryKind.GLOBAL
        ):
            return DMA
    if isinstance(op, CallOp) and op.cost_kind in ("tma_load", "tma_store"):
        return DMA
    return COMPUTE


def _count_crossing_edges(body: Block) -> int:
    producers: Dict[int, str] = {}
    for op in body.walk():
        if op.result is not None:
            producers[id(op.result)] = getattr(op, "role", COMPUTE)
    crossing = 0
    for op in body.walk():
        role = getattr(op, "role", COMPUTE)
        for use in op.preconds:
            producer_role = producers.get(id(use.event))
            if producer_role is not None and producer_role != role:
                crossing += 1
    return crossing


def _pipeline_loop(
    fn: IRFunction, loop: ForOp, depth: int
) -> List[str]:
    """Multi-buffer DMA destinations and record backward dependencies."""
    loop.pipeline = depth
    pipelined: List[str] = []
    body_ops = list(loop.body.walk())
    for op in body_ops:
        if not isinstance(op, CopyOp) or getattr(op, "role", None) != DMA:
            continue
        dst = fn.buffers.get(op.dst.root.uid)
        if dst is None or dst.memory is not MemoryKind.SHARED:
            continue
        if dst.pipeline_depth < depth:
            dst.pipeline_depth = depth
            pipelined.append(dst.name)
        consumers = [
            other
            for other in body_ops
            if other is not op
            and any(
                ref.root.uid == dst.tensor.uid
                for ref in other.tensor_uses()
            )
        ]
        # Iteration k of this copy may start only once the consumers of
        # buffer slot (k mod depth) finished iteration k - depth. These
        # are the dashed backward edges of Figure 12.
        op.war_distance = depth
        op.war_consumers = [c.uid for c in consumers]
    return pipelined
