"""Shared-memory resource allocation (paper section 4.2.4, Figure 11).

Remaining shared-memory tensors must be bound to physical offsets inside
each SM's shared memory. The allocator starts from the *complete*
interference graph — every pair of buffers forced into independent
allocations — and removes auxiliary edges (pairs whose live ranges do
not truly overlap) one at a time until an assignment fits the
user-provided per-thread-block bound. Starting complete and relaxing
guarantees the chosen assignment performs a minimal amount of aliasing,
maximizing the parallelism available to the scheduler. When two buffers
end up aliased, event dependencies are inserted between the last readers
of one and the first writer of the next to prevent write-after-read
hazards.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AllocationError
from repro.ir.module import Buffer, IRFunction
from repro.ir.ops import Block, CallOp, CopyOp, ForOp, Operation, PForOp
from repro.machine.memory import MemoryKind
from repro.machine.processor import ProcessorKind

SMEM_ALIGN = 128  # TMA requires 128-byte aligned shared-memory boxes


@dataclass
class AllocationReport:
    """Result summary stored into ``fn.metadata['allocation']``."""

    total_bytes: int
    limit_bytes: int
    offsets: Dict[str, int]
    aliased_pairs: List[Tuple[str, str]]
    war_edges_added: int
    registers_per_thread: int

    @property
    def aliasing_count(self) -> int:
        return len(self.aliased_pairs)


def allocate_shared(
    fn: IRFunction, limit_bytes: Optional[int] = None
) -> AllocationReport:
    """Assign shared-memory offsets; raises on impossible allocations."""
    if limit_bytes is None:
        limit_bytes = fn.machine.memory(MemoryKind.SHARED).capacity_bytes
    buffers = fn.buffers_in_memory(MemoryKind.SHARED)
    intervals = _live_intervals(fn, buffers)
    sizes = {b.tensor.uid: _footprint(b) for b in buffers}

    minimum = max((sizes[b.tensor.uid] for b in buffers), default=0)
    if minimum > limit_bytes:
        biggest = max(buffers, key=lambda b: sizes[b.tensor.uid])
        raise AllocationError(
            f"shared-memory buffer {biggest.name!r} needs "
            f"{sizes[biggest.tensor.uid]} bytes alone, exceeding the "
            f"{limit_bytes}-byte bound; adjust the mapping (smaller tiles, "
            "shallower pipeline, or fewer tensors in shared memory)"
        )

    true_edges: Set[Tuple[int, int]] = set()
    aux_edges: Set[Tuple[int, int]] = set()
    for a, b in itertools.combinations(buffers, 2):
        key = _edge(a.tensor.uid, b.tensor.uid)
        if _overlaps(intervals[a.tensor.uid], intervals[b.tensor.uid]):
            true_edges.add(key)
        else:
            aux_edges.add(key)

    # Relaxation: drop auxiliary edges (largest footprint pairs first)
    # until the assignment fits.
    removable = sorted(
        aux_edges,
        key=lambda e: sizes[e[0]] + sizes[e[1]],
        reverse=True,
    )
    removed: Set[Tuple[int, int]] = set()
    while True:
        separate = (true_edges | aux_edges) - removed
        offsets, total = _first_fit(buffers, sizes, separate)
        if total <= limit_bytes:
            break
        if len(removed) == len(removable):
            raise AllocationError(
                f"cannot fit {total} bytes of shared-memory tensors into "
                f"the {limit_bytes}-byte bound even with maximal aliasing; "
                "the mapping must place fewer tensors in shared memory or "
                "raise the per-block limit"
            )
        removed.add(removable[len(removed)])

    for buffer in buffers:
        buffer.smem_offset = offsets[buffer.tensor.uid]

    aliased = _aliased_pairs(buffers, sizes, offsets, separate)
    war_added = _insert_war_edges(fn, buffers, intervals, aliased)

    report = AllocationReport(
        total_bytes=max(
            (offsets[b.tensor.uid] + sizes[b.tensor.uid] for b in buffers),
            default=0,
        ),
        limit_bytes=limit_bytes,
        offsets={b.name: offsets[b.tensor.uid] for b in buffers},
        aliased_pairs=[
            (_name(fn, a), _name(fn, b)) for a, b in aliased
        ],
        war_edges_added=war_added,
        registers_per_thread=_register_usage(fn),
    )
    fn.metadata["allocation"] = report
    return report


def _name(fn: IRFunction, uid: int) -> str:
    return fn.buffers[uid].name


def _edge(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _footprint(buffer: Buffer) -> int:
    """Bytes of shared memory one thread block needs for this buffer."""
    size = buffer.tensor.size_bytes * buffer.pipeline_depth
    for extent, proc in getattr(buffer, "replication", ()):
        # Warpgroup-replicated buffers need one copy per warpgroup;
        # warp/thread replication of a *shared* buffer is unusual but
        # handled the same way.
        size *= extent
    return _align(size)


def _align(size: int) -> int:
    return -(-size // SMEM_ALIGN) * SMEM_ALIGN


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
def _live_intervals(
    fn: IRFunction, buffers: List[Buffer]
) -> Dict[int, Tuple[int, int]]:
    """Live interval per buffer over a linearized operation order.

    An access inside a loop body extends liveness across the entire
    loop, since iterations interleave under pipelining.
    """
    positions: Dict[int, int] = {}
    spans: Dict[int, Tuple[int, int]] = {}
    counter = itertools.count()

    def number(block: Block, enclosing: List[Operation]) -> None:
        for op in block.ops:
            start = next(counter)
            positions[op.uid] = start
            if isinstance(op, (ForOp, PForOp)):
                number(op.body, enclosing + [op])
                end = next(counter)
            else:
                end = start
            spans[op.uid] = (start, end)

    number(fn.body, [])

    loops_of: Dict[int, List[Operation]] = {}

    def collect(block: Block, enclosing: List[Operation]) -> None:
        for op in block.ops:
            loops_of[op.uid] = list(enclosing)
            if isinstance(op, (ForOp, PForOp)):
                collect(op.body, enclosing + [op])

    collect(fn.body, [])

    wanted = {b.tensor.uid for b in buffers}
    intervals: Dict[int, Tuple[int, int]] = {}
    for op in fn.walk():
        touched = {ref.root.uid for ref in op.tensor_uses()}
        for uid in touched & wanted:
            # Grid-level parallel loops (one iteration per CTA) do not
            # extend liveness: each CTA has its own shared memory.
            enclosing = [
                loop
                for loop in loops_of.get(op.uid, [])
                if not (
                    isinstance(loop, PForOp)
                    and loop.proc is ProcessorKind.BLOCK
                )
            ]
            if enclosing:
                outermost = enclosing[0]
                lo, hi = spans[outermost.uid]
            else:
                lo, hi = spans[op.uid]
            if uid in intervals:
                old_lo, old_hi = intervals[uid]
                intervals[uid] = (min(old_lo, lo), max(old_hi, hi))
            else:
                intervals[uid] = (lo, hi)
    for buffer in buffers:
        intervals.setdefault(buffer.tensor.uid, (0, 0))
    return intervals


def _overlaps(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


# ----------------------------------------------------------------------
# Offset assignment
# ----------------------------------------------------------------------
def _first_fit(
    buffers: List[Buffer],
    sizes: Dict[int, int],
    separate: Set[Tuple[int, int]],
) -> Tuple[Dict[int, int], int]:
    """First-fit offsets where edge-connected buffers must not overlap."""
    order = sorted(
        buffers, key=lambda b: sizes[b.tensor.uid], reverse=True
    )
    offsets: Dict[int, int] = {}
    for buffer in order:
        uid = buffer.tensor.uid
        size = sizes[uid]
        blocked = []
        for other_uid, other_off in offsets.items():
            if _edge(uid, other_uid) in separate:
                blocked.append((other_off, other_off + sizes[other_uid]))
        blocked.sort()
        offset = 0
        for lo, hi in blocked:
            if offset + size <= lo:
                break
            offset = max(offset, hi)
        offsets[uid] = offset
    total = max(
        (offsets[b.tensor.uid] + sizes[b.tensor.uid] for b in buffers),
        default=0,
    )
    return offsets, total


def _aliased_pairs(
    buffers: List[Buffer],
    sizes: Dict[int, int],
    offsets: Dict[int, int],
    separate: Set[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    aliased = []
    for a, b in itertools.combinations(buffers, 2):
        ua, ub = a.tensor.uid, b.tensor.uid
        if _edge(ua, ub) in separate:
            continue
        a_range = (offsets[ua], offsets[ua] + sizes[ua])
        b_range = (offsets[ub], offsets[ub] + sizes[ub])
        if a_range[0] < b_range[1] and b_range[0] < a_range[1]:
            aliased.append((ua, ub))
    return aliased


# ----------------------------------------------------------------------
# Write-after-read synchronization for aliased buffers
# ----------------------------------------------------------------------
def _insert_war_edges(
    fn: IRFunction,
    buffers: List[Buffer],
    intervals: Dict[int, Tuple[int, int]],
    aliased: List[Tuple[int, int]],
) -> int:
    added = 0
    order = {op.uid: i for i, op in enumerate(fn.walk())}
    for ua, ub in aliased:
        # Earlier-live buffer's last users must complete before the
        # later buffer's first writer starts.
        first, second = (ua, ub)
        if intervals[ub][1] < intervals[ua][0]:
            first, second = (ub, ua)
        last_users = _users_of(fn, first)
        writer = _first_writer(fn, second)
        if writer is None or not last_users:
            continue
        last = max(last_users, key=lambda op: order[op.uid])
        if last.result is not None:
            use = (
                last.result.use_all()
                if last.result.type
                else last.result.use()
            )
            if use not in writer.preconds:
                writer.preconds.append(use)
                added += 1
    return added


def _users_of(fn: IRFunction, uid: int) -> List[Operation]:
    users = []
    for op in fn.walk():
        if any(ref.root.uid == uid for ref in op.tensor_uses()):
            users.append(op)
    return users


def _first_writer(fn: IRFunction, uid: int) -> Optional[Operation]:
    for op in fn.walk():
        if isinstance(op, CopyOp) and op.dst.root.uid == uid:
            return op
        if isinstance(op, CallOp) and any(
            w.root.uid == uid for w in op.writes
        ):
            return op
    return None


def _register_usage(fn: IRFunction) -> int:
    """Estimated registers per thread from REGISTER-memory buffers."""
    total_bytes = 0
    for buffer in fn.buffers_in_memory(MemoryKind.REGISTER):
        per_thread = buffer.tensor.size_bytes
        total_bytes += per_thread
    # 4 bytes per register, plus a fixed overhead for addresses/indices.
    return total_bytes // 4 + 40
