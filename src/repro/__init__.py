"""Cypress reproduction: task-based tensor computations on modern GPUs.

Reproduction of Yadav, Garland, Aiken, Bauer — *Task-Based Tensor
Computations on Modern GPUs*, PLDI 2025. See README.md for a tour,
DESIGN.md for the system inventory, and EXPERIMENTS.md for the
paper-vs-measured results.

Entry points:

- :mod:`repro.api` — compile / run / simulate / batch-compile / serve.
- :mod:`repro.runtime` — the async kernel-serving runtime
  (shape-bucketed dispatch, persistent compile cache, telemetry).
- :mod:`repro.tuner` — the parallel mapping autotuner.
- :mod:`repro.kernels` — the paper's kernel zoo (GEMM family, attention).
- :mod:`repro.machine` — H100 / A100 machine models.
- :mod:`repro.baselines` — comparator system models.
"""

__version__ = "1.2.0"

__all__ = [
    "api",
    "kernels",
    "machine",
    "baselines",
    "runtime",
    "tuner",
    "__version__",
]
