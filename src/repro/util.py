"""Small shared formatting helpers.

Statistics objects across the subsystems (the compile cache's
:class:`~repro.compiler.cache.CacheStats`, the runtime's
:class:`~repro.runtime.telemetry.RuntimeStats`) render rates for
humans; they must all do it the same way, so the one formatter lives
here. ``docs/serving.md`` documents every stats field these renderers
expose.
"""

from __future__ import annotations


def fmt_percent(fraction: float, digits: int = 0) -> str:
    """Format a fraction in [0, 1] as a percentage string.

    Args:
        fraction: the rate to render (0.42 -> ``"42%"``).
        digits: decimal places to keep (default 0).

    Returns:
        The percentage with a trailing ``%``, e.g. ``"42%"`` or
        ``"41.7%"``.
    """
    return f"{fraction * 100.0:.{digits}f}%"
