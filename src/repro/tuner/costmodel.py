"""Analytic latency/occupancy prediction for mapped kernels.

The autotuner's expensive loop is ``compile + simulate`` per candidate:
every sweep pays the full pass pipeline and a discrete-event simulation
for mappings that a napkin calculation could have rejected. This module
is the napkin, made precise enough to rank: :class:`AnalyticCostModel`
scores a :class:`~repro.kernels.common.KernelBuild` (mapping parameters
+ concrete shapes) against a :class:`~repro.machine.machine.
MachineModel` using only the mapping arithmetic — tile FLOPs, bytes
moved per pipeline stage, shared-memory and register pressure, pipeline
depth versus DMA latency hiding, occupancy, waves, bandwidth roofs, and
the deterministic throttle — without running a single compiler pass.

Infeasible mappings (shared-memory overflow, WGMMA row-granule
violations) score ``inf`` with a reason instead of raising, mirroring
how the compiler reports them. Hardware rates come from
:func:`repro.gpusim.roofline.roofline`, the same derivation the
simulator uses, so the model and the simulator can only disagree about
schedule behavior, never about machine capability.

Accuracy contract: predictions are for *ranking*. On the seed kernels
the model tracks simulated cycles within :data:`AGREEMENT_FACTOR`
(absolute) and achieves Spearman rank correlation >= 0.8 against
simulation across the gemm and attention search spaces
(``benchmarks/bench_costmodel.py`` measures both); ``observe`` feeds
simulated outcomes back to keep the absolute scale honest.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.compiler.cache import score_cache
from repro.frontend.mapping import canonicalize
from repro.gpusim.roofline import (
    Roofline,
    effective_waves,
    roofline,
    throttle_scale,
)
from repro.kernels.common import KernelBuild
from repro.machine.machine import MachineModel

#: Shared-memory allocation granule (mirrors the allocator's alignment).
SMEM_ALIGN = 128

#: Documented tolerance of predicted vs simulated cycles on the seed
#: kernels: ``pred / AGREEMENT_FACTOR <= sim <= pred * AGREEMENT_FACTOR``
#: (see ``tests/test_costmodel.py`` and ``docs/tuning.md``).
AGREEMENT_FACTOR = 3.0

INFEASIBLE = float("inf")


def _align(size: float) -> int:
    return -(-int(size) // SMEM_ALIGN) * SMEM_ALIGN


def _cdiv(a: int, b: int) -> int:
    return -(-a // b)


def _prod(values: Sequence[int]) -> int:
    out = 1
    for v in values:
        out *= v
    return out


@dataclass(frozen=True)
class CostEstimate:
    """One candidate's predicted execution profile.

    Attributes:
        name: the scored build's kernel name.
        family: which analytic sub-model produced the estimate
            (``"gemm"``, ``"attention"``, or ``"opaque"``).
        cycles: predicted kernel cycles; ``inf`` for infeasible
            mappings (see ``reason``).
        seconds: predicted wall time including launch overhead.
        tflops: predicted throughput (0.0 when infeasible or no work).
        grid: CTAs launched.
        steps: main-loop iterations per CTA (0 for degenerate shapes).
        smem_bytes: predicted shared memory per CTA after aliasing.
        regs_per_thread: predicted register pressure per thread.
        occupancy: predicted CTAs resident per SM.
        waves: predicted grid waves.
        breakdown: named cycle contributions (``tensor``, ``dma``,
            ``exposed_latency``, ``epilogue``, ...) for reports.
        reason: why the mapping is infeasible (``None`` when feasible).
    """

    name: str
    family: str
    cycles: float
    seconds: float
    tflops: float
    grid: int
    steps: int
    smem_bytes: int
    regs_per_thread: int
    occupancy: int
    waves: int
    breakdown: Dict[str, float] = field(default_factory=dict)
    reason: Optional[str] = None

    @property
    def feasible(self) -> bool:
        """Whether the mapping can execute at all (finite cycles)."""
        return math.isfinite(self.cycles)


def _infeasible(name: str, family: str, reason: str) -> CostEstimate:
    return CostEstimate(
        name=name,
        family=family,
        cycles=INFEASIBLE,
        seconds=INFEASIBLE,
        tflops=0.0,
        grid=0,
        steps=0,
        smem_bytes=0,
        regs_per_thread=0,
        occupancy=0,
        waves=0,
        reason=reason,
    )


@dataclass
class _LoopModel:
    """Per-CTA quantities one analytic sub-model hands the shared solver."""

    grid: int
    steps: int
    tensor_per_step: float      # Tensor Core FLOPs per main-loop step
    serial_per_step: float      # SFU/SIMT ops serialized with tensor work
    dma_bytes_per_step: float   # global bytes fetched per step
    loads_per_step: int         # distinct bulk copies per step
    chain_dma_bytes: float      # bytes feeding the critical consumer
    chain_tensor_flops: float   # that consumer's Tensor Core FLOPs
    serialized_steps: bool      # in-step dependence chain gates fetches
    prologue_dma_bytes: float   # one-time loads (e.g. the Q tile)
    prologue_simt_flops: float  # accumulator clears, softmax init
    stage_bytes: float          # shared-memory staging traffic (epilogue)
    loop_smem: int              # main-loop shared memory per CTA
    epilogue_smem: int          # staging shared memory (aliasable)
    acc_bytes: int              # register bytes per CTA (all fragments)


class AnalyticCostModel:
    """Scores mappings analytically; calibrates itself from simulation.

    ``score`` returns **raw** (scale-free) estimates, memoized
    process-wide in :data:`repro.compiler.cache.score_cache` — the
    memo survives calibration updates because calibration never enters
    the verdict. One instance additionally holds per-family
    multiplicative corrections learned from ``observe`` (a geometric
    moving average of simulated/predicted cycle ratios); consumers
    apply them at reporting time via :meth:`calibrated_cycles` /
    :meth:`calibrated_tflops`, so repeated two-stage sweeps tighten the
    absolute scale while rank order — what pruning needs — comes from
    the analytic structure alone.

    Thread-safe: scoring is pure; calibration updates take a lock.
    """

    #: Calibration EMA weight for each new observation.
    OBSERVE_WEIGHT = 0.25

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._log_scale: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def scale_for(self, family: str) -> float:
        """Current multiplicative calibration for ``family`` (1.0 raw)."""
        with self._lock:
            return math.exp(self._log_scale.get(family, 0.0))

    def calibrated_cycles(self, estimate: CostEstimate) -> float:
        """``estimate.cycles`` with the family's calibration applied."""
        return estimate.cycles * self.scale_for(estimate.family)

    def calibrated_tflops(self, estimate: CostEstimate) -> float:
        """``estimate.tflops`` with the family's calibration applied.

        Throughput scales inversely with cycles; the fixed launch
        overhead is negligible at tuning scales, so the division is an
        accurate first-order correction.
        """
        scale = self.scale_for(estimate.family)
        return estimate.tflops / scale if scale > 0 else estimate.tflops

    def observe(
        self,
        estimate: CostEstimate,
        simulated_cycles: float,
    ) -> None:
        """Feed one simulated outcome back into the calibration.

        Args:
            estimate: the prediction previously returned by ``score``.
            simulated_cycles: the simulator's cycle count for the same
                build.

        Raises:
            Nothing: degenerate observations (infeasible estimates,
            non-positive cycles) are ignored rather than raised, so the
            tuner can feed every survivor back unconditionally.
        """
        if not estimate.feasible or simulated_cycles <= 0:
            return
        if estimate.cycles <= 0:
            return
        # Estimates are raw (scale-free), so the log-ratio is the
        # *absolute* correction and a bounded EMA toward it is stable
        # no matter how many observations one sweep feeds in — each
        # update moves toward the same target rather than compounding.
        ratio = math.log(simulated_cycles / estimate.cycles)
        with self._lock:
            old = self._log_scale.get(estimate.family)
            if old is None:
                self._log_scale[estimate.family] = ratio
            else:
                self._log_scale[estimate.family] = (
                    (1.0 - self.OBSERVE_WEIGHT) * old
                    + self.OBSERVE_WEIGHT * ratio
                )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_key(
        self, build: KernelBuild, machine: MachineModel
    ) -> Tuple[Any, ...]:
        """The memoization key for ``score(build, machine)``.

        Deliberately cheap — hashing must cost less than the scoring it
        saves, so this avoids the SHA-256 compile-key path and keys on
        the build's name, parameters, shapes, and the machine's full
        :class:`~repro.gpusim.roofline.Roofline` (every derived rate
        and limit the model consumes — two machines sharing a name but
        differing in capability cannot collide). Calibration is *not*
        part of the key: verdicts are raw, so the memo keeps hitting
        across calibration updates.

        Args:
            build: the kernel build being scored.
            machine: the target machine.

        Returns:
            A hashable tuple suitable for
            :class:`~repro.compiler.cache.ScoreCache`.
        """
        return (
            build.name,
            canonicalize(build.params),
            tuple(tuple(s) for s in build.arg_shapes),
            float(build.total_flops),
            float(build.unique_dram_bytes),
            machine.name,
            roofline(machine),
            self._family(build),
        )

    def score(
        self,
        build: KernelBuild,
        machine: MachineModel,
        *,
        memoize: bool = True,
    ) -> CostEstimate:
        """Predict the execution profile of ``build`` on ``machine``.

        Args:
            build: a mapped kernel instantiation from the kernel zoo
                (or any build exposing ``params``/``arg_shapes``/
                ``total_flops``/``unique_dram_bytes``).
            machine: the machine to predict for.
            memoize: consult/populate the process-wide
                :data:`~repro.compiler.cache.score_cache`.

        Returns:
            A **raw** (calibration-free) :class:`CostEstimate`;
            infeasible mappings come back with ``cycles == inf`` and a
            ``reason`` — never an exception. Apply
            :meth:`calibrated_cycles` for the scale-corrected number.
        """
        if not memoize:
            return self._score_uncached(build, machine)
        return score_cache.get_or_score(
            self.score_key(build, machine),
            lambda: self._score_uncached(build, machine),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _family(build: KernelBuild) -> str:
        params = build.params or {}
        if "q_tile" in params:
            return "attention"
        if "tile_m" in params:
            return "gemm"
        return "opaque"

    def _score_uncached(
        self, build: KernelBuild, machine: MachineModel
    ) -> CostEstimate:
        roof = roofline(machine)
        family = self._family(build)
        if family == "attention":
            model = self._attention_loop(build)
        elif family == "gemm":
            model = self._gemm_loop(build)
        else:
            model = None
        if isinstance(model, CostEstimate):  # infeasibility short-circuit
            return model
        if model is None:
            return self._opaque(build, roof)
        return self._solve(build, machine, roof, family, model)

    def _gemm_loop(self, build: KernelBuild):
        params = build.params
        tile_m = int(params["tile_m"])
        tile_n = int(params.get("tile_n", tile_m))
        tile_k = int(params.get("tile_k", 64))
        wgs = int(params.get("wgs", 1))
        out = build.arg_shapes[0]
        batch = _prod(out[:-2]) if len(out) > 2 else 1
        m, n = out[-2], out[-1]
        k = build.arg_shapes[-1][-2] if len(build.arg_shapes[-1]) >= 2 else 0
        bad = self._wgmma_violation(build.name, "gemm", tile_m, wgs)
        if bad is not None:
            return bad

        elem = 2  # FP16 operands throughout the zoo
        # How many (k, n) operands feed each output tile: 1 for GEMM /
        # batched / +reduction, 2 for Dual-GEMM. Recovered from the
        # declared FLOPs so the model needs no per-kernel special case.
        denom = 2.0 * batch * m * n * k
        mults = max(1, round(build.total_flops / denom)) if denom else 1

        grid = max(1, batch * _cdiv(m, tile_m) * _cdiv(n, tile_n)) if (
            m and n
        ) else 1
        steps = _cdiv(k, tile_k) if k > 0 else 0

        a_tile = tile_m * tile_k * elem
        b_tile = tile_k * tile_n * elem
        c_stage = tile_m * tile_n * elem
        # The allocator assigns offsets before the pipelining pass
        # multi-buffers anything, so deep pipelines reuse the same
        # physical tiles (backward WAR edges, not extra smem) — the
        # footprint must NOT scale with pipeline depth.
        loop_smem = _align(a_tile) + mults * _align(b_tile)
        # One register fragment per MMA in the step plus the clear
        # tree's (mirrors the allocator's register report).
        acc_bytes = (1 + mults) * tile_m * tile_n * elem
        if params.get("accumulator") == "shared":
            # The GEMM+Reduction ablation parks the row accumulator in
            # shared memory and pays staging traffic for it.
            loop_smem += _align(tile_m * 4)

        return _LoopModel(
            grid=grid,
            steps=steps,
            tensor_per_step=2.0 * tile_m * tile_n * tile_k * mults,
            serial_per_step=0.0,
            dma_bytes_per_step=float(a_tile + mults * b_tile),
            loads_per_step=1 + mults,
            # The critical chain fetches one A/B pair; a Dual-GEMM's
            # second B load overlaps the first MMA, but both MMAs
            # serialize on the shared accumulator.
            chain_dma_bytes=float(a_tile + b_tile),
            chain_tensor_flops=2.0 * tile_m * tile_n * tile_k * mults,
            serialized_steps=mults >= 2,
            prologue_dma_bytes=0.0,
            prologue_simt_flops=float(tile_m * tile_n),
            stage_bytes=float(c_stage),
            loop_smem=loop_smem,
            epilogue_smem=_align(c_stage),
            acc_bytes=acc_bytes,
        )

    def _attention_loop(self, build: KernelBuild):
        params = build.params
        q_tile = int(params["q_tile"])
        kv_tile = int(params.get("kv_tile", 128))
        wgs = int(params.get("wgs", 1))
        heads, seq, d = build.arg_shapes[0]
        bad = self._wgmma_violation(build.name, "attention", q_tile, wgs)
        if bad is not None:
            return bad

        elem = 2
        grid = max(1, heads * _cdiv(seq, q_tile)) if seq else 1
        steps = _cdiv(seq, kv_tile) if seq > 0 else 0

        k_tile = d * kv_tile * elem
        v_tile = kv_tile * d * elem
        q_bytes = q_tile * d * elem
        p_tile = q_tile * kv_tile * elem       # probabilities, via smem
        o_stage = q_tile * d * 4               # FP32 accumulator staged out
        # No pipeline multiplier: allocation precedes multi-buffering
        # (see the gemm model).
        loop_smem = (
            _align(q_bytes)
            + _align(k_tile)
            + _align(v_tile)
            + _align(p_tile)
        )
        return _LoopModel(
            grid=grid,
            steps=steps,
            # Both GEMMs of one kv step: S = Q K^T and O += P V.
            tensor_per_step=4.0 * q_tile * kv_tile * d,
            # The online-softmax update: ~2 SFU ops per score element,
            # serialized between the two GEMMs by data dependence.
            serial_per_step=2.0 * q_tile * kv_tile,
            dma_bytes_per_step=float(k_tile + v_tile),
            loads_per_step=2,
            # The K and V tiles feed *different* GEMMs, so the critical
            # fetch chain covers one tile and one of the two GEMMs; the
            # rest of the step's serial work is free latency slack.
            chain_dma_bytes=float(k_tile),
            chain_tensor_flops=2.0 * q_tile * kv_tile * d,
            serialized_steps=True,
            prologue_dma_bytes=float(q_bytes),
            prologue_simt_flops=float(q_tile * d),
            stage_bytes=float(o_stage + p_tile),
            loop_smem=loop_smem,
            epilogue_smem=_align(o_stage),
            # The O accumulator appears twice (clear + compute trees)
            # plus the FP32 score fragment.
            acc_bytes=2 * q_tile * d * 4 + q_tile * kv_tile * 4,
        )

    @staticmethod
    def _wgmma_violation(
        name: str, family: str, rows: int, wgs: int
    ) -> Optional[CostEstimate]:
        if wgs < 1:
            return _infeasible(name, family, f"invalid warpgroup count {wgs}")
        if rows % wgs != 0 or (rows // wgs) % 64 != 0:
            return _infeasible(
                name,
                family,
                f"warpgroup tile of {rows}/{wgs} rows violates the 64-row "
                "WGMMA granule",
            )
        return None

    def _solve(
        self,
        build: KernelBuild,
        machine: MachineModel,
        roof: Roofline,
        family: str,
        lm: _LoopModel,
    ) -> CostEstimate:
        params = build.params or {}
        wgs = int(params.get("wgs", 1))
        pipeline = int(params.get("pipeline", 1))
        warpspec = bool(params.get("warpspecialize", False))
        name = build.name

        # -- shared memory and feasibility ------------------------------
        smem = lm.loop_smem + lm.epilogue_smem
        if smem > roof.smem_capacity_bytes:
            # The allocator aliases the epilogue staging buffer with the
            # (dead by then) main-loop tiles before giving up.
            smem = max(lm.loop_smem, lm.epilogue_smem)
            if smem > roof.smem_capacity_bytes:
                return _infeasible(
                    name,
                    family,
                    f"mapping needs {max(lm.loop_smem, lm.epilogue_smem)} B "
                    f"of shared memory per CTA, exceeding the "
                    f"{roof.smem_capacity_bytes}-byte capacity even with "
                    "maximal aliasing",
                )

        # -- occupancy --------------------------------------------------
        threads = 128 * wgs + (128 if warpspec else 0)
        regs_per_thread = lm.acc_bytes // max(1, wgs * 128) // 4 + 40
        occupancy = roof.max_ctas_per_sm
        if smem > 0:
            occupancy = min(occupancy, roof.smem_capacity_bytes // smem)
        occupancy = min(occupancy, roof.max_threads_per_sm // threads)
        if regs_per_thread * threads > 0:
            occupancy = min(
                occupancy,
                roof.registers_per_sm // (regs_per_thread * threads),
            )
        occupancy = max(1, occupancy)

        # -- per-step steady state --------------------------------------
        tensor = lm.tensor_per_step / roof.tensor_flops_per_cycle
        serial = lm.serial_per_step / roof.sfu_ops_per_cycle
        dma = lm.dma_bytes_per_step / roof.global_bytes_per_cycle
        latency = roof.copy_latency_cycles()
        issue = lm.loads_per_step * roof.copy_issue_cycles(
            lm.dma_bytes_per_step / max(1, lm.loads_per_step)
        )
        # Serial work (the online softmax) sits between the two GEMMs of
        # a step and synchronizes the whole block, so it extends the
        # critical path regardless of warpgroup count.
        compute = tensor + serial
        if warpspec:
            # The DMA warp runs ahead, bounded by per-buffer backward
            # WAR edges at distance `pipeline`: the steady-state period
            # is each server's service time, or the critical consumer's
            # fetch+compute chain amortized over its in-flight buffers.
            chain = (
                lm.chain_dma_bytes / roof.global_bytes_per_cycle
                + latency
                + lm.chain_tensor_flops / roof.tensor_flops_per_cycle
            )
            step_cycles = max(compute, dma, chain / max(1, pipeline))
        elif lm.serialized_steps:
            # Single-stream with an in-step dependence chain (blocking
            # softmax, or a load gated on the previous MMA): the stream
            # re-exposes the full chain every step.
            step_cycles = compute + dma + latency + issue
        else:
            # Single-stream, async copies, no blocking work: loads
            # stream ahead of the MMAs, but each step's consumer still
            # waits one full fetch; depth changes nothing because
            # multi-buffering only happens under warp specialization.
            step_cycles = max(tensor, dma + latency + issue)
        exposed = step_cycles - max(compute, dma)

        # -- prologue / epilogue ---------------------------------------
        prologue = lm.prologue_simt_flops / roof.simt_flops_per_cycle
        if lm.prologue_dma_bytes:
            prologue += (
                lm.prologue_dma_bytes / roof.global_bytes_per_cycle + latency
            )
        fill = (dma + latency) if (warpspec and lm.steps > 0) else 0.0
        # The TMA store itself is modeled as free by the simulator; the
        # epilogue cost is the register->shared staging plus one copy
        # latency.
        epilogue = lm.stage_bytes / roof.smem_bytes_per_cycle + (
            latency if lm.stage_bytes else 0.0
        )
        loop_cycles = lm.steps * step_cycles
        cta_cycles = prologue + fill + loop_cycles + epilogue

        # -- waves and multi-CTA contention -----------------------------
        tensor_busy = lm.steps * tensor
        dma_busy = (
            lm.steps * dma
            + lm.prologue_dma_bytes / roof.global_bytes_per_cycle
        )
        serial_busy = lm.steps * serial
        stage_busy = lm.stage_bytes / roof.smem_bytes_per_cycle
        wave_cycles = max(
            cta_cycles,
            occupancy * tensor_busy,
            occupancy * dma_busy,
            occupancy * serial_busy,
            occupancy * stage_busy,
        )
        concurrent = int(roof.sm_count) * occupancy
        waves = max(1, math.ceil(lm.grid / concurrent))
        compute_cycles = (
            effective_waves(lm.grid, concurrent) * wave_cycles
            + roof.cta_start_cycles
        )

        # -- bandwidth roofs -------------------------------------------
        loaded = lm.grid * (
            lm.steps * lm.dma_bytes_per_step + lm.prologue_dma_bytes
        )
        hbm_floor = build.unique_dram_bytes / roof.hbm_bytes_per_cycle
        l2_floor = loaded / roof.l2_bytes_per_cycle
        cycles = max(compute_cycles, hbm_floor, l2_floor)

        # -- throttle (the simulator's deterministic model, shared) -----
        cycles = cycles / throttle_scale(roof, build.total_flops, cycles)
        seconds = cycles / roof.clock_hz + roof.kernel_launch_us * 1e-6
        tflops = (
            build.total_flops / seconds / 1e12 if seconds > 0 else 0.0
        )
        return CostEstimate(
            name=name,
            family=family,
            cycles=cycles,
            seconds=seconds,
            tflops=tflops,
            grid=lm.grid,
            steps=lm.steps,
            smem_bytes=smem,
            regs_per_thread=regs_per_thread,
            occupancy=occupancy,
            waves=waves,
            breakdown={
                "tensor": tensor_busy,
                "dma": dma_busy,
                "serial": serial_busy,
                "exposed_latency": lm.steps * exposed,
                "prologue": prologue,
                "epilogue": epilogue,
                "hbm_floor": hbm_floor,
                "l2_floor": l2_floor,
            },
        )

    def _opaque(self, build: KernelBuild, roof: Roofline) -> CostEstimate:
        """Pure-roofline fallback for builds without recognized params."""
        device_flops_per_cycle = (
            roof.tensor_flops_per_cycle * roof.sm_count
        )
        compute = build.total_flops / device_flops_per_cycle
        memory = build.unique_dram_bytes / roof.hbm_bytes_per_cycle
        cycles = max(compute, memory, 1.0)
        seconds = cycles / roof.clock_hz + roof.kernel_launch_us * 1e-6
        return CostEstimate(
            name=build.name,
            family="opaque",
            cycles=cycles,
            seconds=seconds,
            tflops=(
                build.total_flops / seconds / 1e12 if seconds > 0 else 0.0
            ),
            grid=int(roof.sm_count),
            steps=0,
            smem_bytes=0,
            regs_per_thread=0,
            occupancy=1,
            waves=1,
            breakdown={"compute_roof": compute, "memory_roof": memory},
        )


#: The process-wide model ``autotune`` uses when no ``cost_model`` is
#: passed, so calibration feedback accumulates across sweeps (per-bucket
#: warm-ups, repeated benchmark runs) instead of dying with a throwaway
#: instance.
default_cost_model = AnalyticCostModel()


def spearman(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """Spearman rank correlation of two paired samples.

    Ties receive average ranks (the standard treatment), so repeated
    predicted cycles cannot fabricate correlation.

    Args:
        xs / ys: paired observations; must have equal length.

    Returns:
        The rank correlation in [-1, 1]; 0.0 when fewer than two pairs
        or when either sample is constant.

    Raises:
        ValueError: when the samples have different lengths.
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"spearman needs paired samples, got {len(xs)} vs {len(ys)}"
        )
    n = len(xs)
    if n < 2:
        return 0.0

    def ranks(values: Sequence[float]) -> list:
        order = sorted(range(n), key=lambda i: values[i])
        out = [0.0] * n
        i = 0
        while i < n:
            j = i
            while j + 1 < n and values[order[j + 1]] == values[order[i]]:
                j += 1
            avg = (i + j) / 2.0 + 1.0
            for idx in order[i : j + 1]:
                out[idx] = avg
            i = j + 1
        return out

    rx, ry = ranks(xs), ranks(ys)
    mean = (n + 1) / 2.0
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var_x = sum((a - mean) ** 2 for a in rx)
    var_y = sum((b - mean) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
