"""The two-stage mapping autotuner.

``autotune`` turns the paper's "tuning is data, not code" observation
into a subsystem, and makes the search cheap with a two-stage flow:

1. **Score** every candidate in the :class:`MappingSearchSpace` with the
   analytic cost model (:mod:`repro.tuner.costmodel`) — microseconds per
   mapping, no compiler pass executed, verdicts memoized process-wide.
   Cost-model-infeasible mappings (shared-memory overflow, WGMMA granule
   violations) are recorded as failures without compiling.
2. **Evaluate** the ``top_k`` best-ranked survivors (and/or as many as
   fit a wall-clock ``budget``) the expensive way: batch-compile through
   ``api.compile_many`` (sharing the content-keyed compile cache across
   workers) and time each on the simulated GPU.

With ``top_k=None`` and ``budget=None`` every candidate is fully
evaluated (the exhaustive sweep of earlier revisions) — predictions are
still attached, so the report can always quantify the model's honesty:
:meth:`TuningReport.spearman` gives the rank correlation between
predicted and simulated cycles, and the simulated survivors are fed
back through :meth:`~repro.tuner.costmodel.AnalyticCostModel.observe`
to calibrate the model's absolute scale.

Infeasible mappings — whichever stage discovers them — are recorded as
failures rather than aborting the sweep, mirroring how the compiler
reports them instead of silently mis-compiling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import api
from repro.compiler.passes import CompileOptions
from repro.errors import CypressError
from repro.kernels.common import KernelBuild
from repro.machine.machine import MachineModel
from repro.tuner.costmodel import (
    AnalyticCostModel,
    CostEstimate,
    default_cost_model,
    spearman,
)
from repro.tuner.search_space import MappingSearchSpace

#: ``build_fn(machine, **candidate) -> KernelBuild``
BuildFn = Callable[..., KernelBuild]


@dataclass
class TuningResult:
    """One candidate's outcome.

    Attributes:
        candidate: the swept parameter dict.
        tflops: simulated throughput; ``None`` unless fully evaluated.
        kernel_name: the built kernel's name, when building succeeded.
        error: the failure message (builder, cost model, or compiler).
        predicted_cycles / predicted_tflops: the cost model's stage-1
            verdict (``None`` when the model could not score the
            candidate).
        simulated_cycles: the simulator's cycle count, when evaluated.
        pruned: True when stage 1 ranked this feasible candidate below
            the ``top_k``/``budget`` cut, so it was never compiled.
    """

    candidate: Dict[str, Any]
    tflops: Optional[float] = None
    kernel_name: Optional[str] = None
    error: Optional[str] = None
    predicted_cycles: Optional[float] = None
    predicted_tflops: Optional[float] = None
    simulated_cycles: Optional[float] = None
    pruned: bool = False

    @property
    def ok(self) -> bool:
        """Whether this candidate was fully compiled and simulated."""
        return self.tflops is not None

    def label(self) -> str:
        """A compact human-readable tag for the candidate."""
        c = self.candidate
        parts = []
        shown = set()
        if {"tile_m", "tile_n", "tile_k"} <= set(c):
            parts.append(f"{c['tile_m']}x{c['tile_n']}x{c['tile_k']}")
            shown |= {"tile_m", "tile_n", "tile_k"}
        for key, short in (
            ("wgs", "wgs"), ("pipeline", "pipe"),
            ("warpspecialize", "ws"),
        ):
            if key in c:
                parts.append(f"{short}={c[key]}")
                shown.add(key)
        for key in sorted(set(c) - shown):
            parts.append(f"{key}={c[key]}")
        return " ".join(parts) or "<defaults>"


@dataclass
class SearchStats:
    """Where the sweep spent its effort.

    Attributes:
        candidates: total candidates enumerated from the space.
        scored: candidates the cost model scored.
        compiled: candidates fully compiled + simulated (stage 2).
        pruned: feasible candidates dropped by ``top_k``/``budget``.
        score_s: wall-clock seconds spent in stage 1.
        evaluate_s: wall-clock seconds spent in stage 2.
    """

    candidates: int = 0
    scored: int = 0
    compiled: int = 0
    pruned: int = 0
    score_s: float = 0.0
    evaluate_s: float = 0.0


@dataclass
class TuningReport:
    """Ranked sweep results: simulated candidates first, best on top,
    then pruned candidates by predicted throughput, then failures."""

    results: List[TuningResult] = field(default_factory=list)
    search: SearchStats = field(default_factory=SearchStats)

    @property
    def best(self) -> TuningResult:
        """The best fully evaluated candidate.

        Raises:
            CypressError: when no candidate was feasible.
        """
        for result in self.results:
            if result.ok:
                return result
        raise CypressError(
            "autotune found no feasible mapping in the search space"
        )

    @property
    def feasible(self) -> List[TuningResult]:
        """Fully evaluated candidates, best first."""
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[TuningResult]:
        """Candidates that could not be built, scored, or compiled."""
        return [r for r in self.results if not r.ok and not r.pruned]

    @property
    def pruned(self) -> List[TuningResult]:
        """Feasible candidates stage 1 ranked below the cut."""
        return [r for r in self.results if r.pruned]

    def spearman(self) -> Optional[float]:
        """Rank correlation between predicted and simulated cycles.

        Returns:
            The Spearman coefficient over candidates carrying both
            numbers, or ``None`` when fewer than two do. This is the
            honesty metric of the two-stage search: a high value means
            stage-1 pruning agrees with what full evaluation would have
            chosen.
        """
        pairs = [
            (r.predicted_cycles, r.simulated_cycles)
            for r in self.results
            if r.predicted_cycles is not None
            and r.simulated_cycles is not None
        ]
        if len(pairs) < 2:
            return None
        return spearman([p for p, _ in pairs], [s for _, s in pairs])

    def prediction_error(self) -> Optional[float]:
        """Mean absolute relative error of predicted vs simulated cycles
        over the evaluated candidates (``None`` without samples)."""
        errs = [
            abs(r.simulated_cycles / r.predicted_cycles - 1.0)
            for r in self.results
            if r.predicted_cycles and r.simulated_cycles
        ]
        if not errs:
            return None
        return sum(errs) / len(errs)

    def summary(self) -> str:
        """A ranked table in the style of the paper's exploration."""
        lines = [f"{'mapping':<40} {'TFLOP/s':>9} {'predicted':>10}"]
        for result in self.results:
            predicted = (
                f"{result.predicted_tflops:>10.1f}"
                if result.predicted_tflops is not None
                else f"{'—':>10}"
            )
            if result.ok:
                lines.append(
                    f"{result.label():<40} {result.tflops:>9.1f} {predicted}"
                )
            elif result.pruned:
                lines.append(
                    f"{result.label():<40} {'pruned':>9} {predicted}"
                )
            else:
                reason = (result.error or "").split(";")[0][:34]
                lines.append(
                    f"{result.label():<40}      — ({reason})"
                )
        return "\n".join(lines)


@dataclass
class RankedCandidate:
    """One stage-1 survivor of :func:`rank_candidates`.

    Attributes:
        candidate: the swept parameter dict.
        build: the instantiated :class:`KernelBuild`.
        predicted_cycles: the cost model's calibrated cycle estimate.
    """

    candidate: Dict[str, Any]
    build: KernelBuild
    predicted_cycles: float


def rank_candidates(
    build_fn: BuildFn,
    machine: MachineModel,
    space: MappingSearchSpace,
    *,
    cost_model: Optional[AnalyticCostModel] = None,
    top_k: Optional[int] = None,
) -> List[RankedCandidate]:
    """Stage-1-only ranking: score a search space without compiling.

    Builds and analytically scores every candidate in ``space``
    (verdicts are memoized process-wide, so repeated rankings cost
    dictionary lookups) and returns the feasible ones best-first. This
    is the piece of :func:`autotune` the background speculator runs to
    pick which mappings to precompile — microseconds per candidate, no
    compiler pass executed, no simulation.

    Args:
        build_fn: builder called as ``build_fn(machine, **candidate)``.
        machine: the machine candidates are mapped to (and scored
            against).
        space: the declarative candidate enumeration.
        cost_model: defaults to the process-wide
            :data:`~repro.tuner.costmodel.default_cost_model`.
        top_k: keep only the best ``top_k`` survivors (``None`` keeps
            all).

    Returns:
        Feasible candidates ranked by predicted cycles, best first;
        empty when nothing in the space is feasible.
    """
    model = cost_model if cost_model is not None else default_cost_model
    ranked: List[RankedCandidate] = []
    for candidate in space.as_list():
        try:
            build = build_fn(machine, **candidate)
        except (CypressError, TypeError):
            continue
        estimate = model.score(build, machine)
        if not estimate.feasible:
            continue
        ranked.append(
            RankedCandidate(
                candidate=candidate,
                build=build,
                predicted_cycles=model.calibrated_cycles(estimate),
            )
        )
    ranked.sort(key=lambda r: r.predicted_cycles)
    if top_k is not None:
        ranked = ranked[:top_k]
    return ranked


def autotune(
    build_fn: BuildFn,
    machine: MachineModel,
    space: MappingSearchSpace,
    *,
    options: Optional[CompileOptions] = None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    simulate_machine: Optional[MachineModel] = None,
    cost_model: Optional[AnalyticCostModel] = None,
    top_k: Optional[int] = None,
    budget: Optional[float] = None,
    calibrate: bool = True,
) -> TuningReport:
    """Sweep a mapping search space and rank candidates by throughput.

    Args:
        build_fn: builder called as ``build_fn(machine, **candidate)``;
            pass a ``functools.partial``/lambda to close over problem
            sizes, e.g. ``lambda m, **p: build_gemm(m, N, N, N, **p)``.
        machine: the machine candidates are mapped to.
        space: the declarative candidate enumeration.
        options: compile options for every candidate (defaults to
            caching on and verify-at-ends — autotuning trusts the
            compiler and wants throughput).
        executor / max_workers: forwarded to ``api.compile_many``.
        simulate_machine: machine for timing; defaults to ``machine``.
        cost_model: the analytic model used for stage-1 ranking and
            prediction reporting; defaults to the process-wide
            :data:`~repro.tuner.costmodel.default_cost_model`, so
            calibration accumulates across sweeps.
        top_k: fully evaluate only the ``top_k`` cost-model-ranked
            survivors. ``None`` evaluates every feasible candidate
            (the exhaustive sweep).
        budget: wall-clock seconds allowed for stage 2. Survivors are
            evaluated in predicted-rank order, one compile batch at a
            time, until the budget is exhausted (at least one batch
            always runs). ``None`` means unlimited. Whatever the
            knobs say, evaluation keeps walking down the ranking while
            *nothing* has compiled successfully, so a cost-model blind
            spot degrades toward the exhaustive sweep instead of
            returning a report whose ``best`` raises.
        calibrate: feed simulated outcomes back into ``cost_model`` so
            repeated sweeps tighten its absolute scale.

    Returns:
        A :class:`TuningReport` with simulated candidates ranked first,
        pruned candidates next (by predicted throughput), failures last.

    Raises:
        CypressError: only for infrastructure failures (e.g. an unknown
            ``executor``); per-candidate problems are recorded in the
            report, never raised.
    """
    if options is None:
        options = CompileOptions(verify="ends")
    simulate_machine = simulate_machine or machine
    model = cost_model if cost_model is not None else default_cost_model
    two_stage = top_k is not None or budget is not None

    candidates = space.as_list()
    stats = SearchStats(candidates=len(candidates))
    results: List[TuningResult] = []
    builds: Dict[int, KernelBuild] = {}
    estimates: Dict[int, CostEstimate] = {}

    # -- build + stage 1: analytic scoring -----------------------------
    score_start = time.perf_counter()
    for index, candidate in enumerate(candidates):
        results.append(TuningResult(candidate=candidate))
        try:
            build = build_fn(machine, **candidate)
        except (CypressError, TypeError) as error:
            # TypeError covers builders whose signature lacks a swept
            # axis (e.g. attention builders take q_tile, not tile_m):
            # the mismatch is reported per candidate, not fatal.
            results[index].error = str(error)
            continue
        results[index].kernel_name = build.name
        builds[index] = build
        # Score against the machine stage 2 will *time on*, so the
        # pruning cut ranks the same quantity the sweep optimizes.
        estimate = model.score(build, simulate_machine)
        estimates[index] = estimate
        stats.scored += 1
        if estimate.feasible:
            # Raw verdicts get the per-family calibration at reporting
            # time (the scale the pruning decision actually used).
            results[index].predicted_cycles = model.calibrated_cycles(
                estimate
            )
            results[index].predicted_tflops = model.calibrated_tflops(
                estimate
            )
        elif two_stage:
            # Stage 1 rejects without compiling; the exhaustive sweep
            # still compiles so the compiler's own message is recorded.
            results[index].error = f"cost model: {estimate.reason}"
            builds.pop(index)
    stats.score_s = time.perf_counter() - score_start

    # -- stage 2: compile + simulate down the ranking ------------------
    ranked = list(builds)
    if two_stage:
        ranked.sort(
            key=lambda i: results[i].predicted_cycles
            if results[i].predicted_cycles is not None
            else float("inf")
        )
    evaluate_start = time.perf_counter()
    evaluated = _evaluate(
        [(i, builds[i]) for i in ranked],
        results,
        simulate_machine,
        options=options,
        executor=executor,
        max_workers=max_workers,
        top_k=top_k if two_stage else None,
        budget=budget,
        start=evaluate_start,
    )
    for index in ranked:
        if index not in evaluated:
            results[index].pruned = True
    stats.evaluate_s = time.perf_counter() - evaluate_start
    stats.compiled = len(evaluated)
    stats.pruned = sum(1 for r in results if r.pruned)

    if calibrate:
        for index in evaluated:
            result = results[index]
            if result.ok and index in estimates:
                model.observe(estimates[index], result.simulated_cycles)

    results.sort(key=_rank_key)
    return TuningReport(results=results, search=stats)


def _evaluate(
    jobs: List[Tuple[int, KernelBuild]],
    results: List[TuningResult],
    simulate_machine: MachineModel,
    *,
    options: CompileOptions,
    executor: str,
    max_workers: Optional[int],
    top_k: Optional[int],
    budget: Optional[float],
    start: float,
) -> List[int]:
    """Compile + simulate ``jobs`` in rank order under the knobs.

    Returns the indices actually evaluated. With neither knob the whole
    list is one ``compile_many`` batch (the exhaustive sweep's full
    parallelism). Otherwise batches run down the ranking until
    ``top_k`` candidates are evaluated and/or the ``budget`` expires —
    but **never stop while nothing has compiled successfully**: a
    cost-model blind spot among the top-ranked candidates must degrade
    toward the exhaustive sweep, not sink the whole search.
    """
    if not jobs:
        return []
    evaluated: List[int] = []
    succeeded = 0

    def run(chunk: List[Tuple[int, KernelBuild]]) -> None:
        nonlocal succeeded
        kernels = api.compile_many(
            [build for _, build in chunk],
            options=options,
            executor=executor,
            max_workers=max_workers,
            raise_on_error=False,
        )
        for (index, _build), kernel in zip(chunk, kernels):
            evaluated.append(index)
            if isinstance(kernel, api.CompileFailure):
                results[index].error = str(kernel.error)
                continue
            gpu = api.simulate(kernel, simulate_machine)
            results[index].tflops = gpu.tflops
            results[index].simulated_cycles = gpu.cycles
            succeeded += 1

    if top_k is None and budget is None:
        run(jobs)
        return evaluated

    width = max_workers or 8
    queue = list(jobs)
    while queue:
        if succeeded > 0:
            # Compile failures don't count toward the contract: top_k
            # promises that many candidates fully evaluated, so the
            # walk refills past rejected ones.
            if top_k is not None and succeeded >= top_k:
                break
            if (
                budget is not None
                and evaluated
                and time.perf_counter() - start >= budget
            ):
                break
        take = width
        if top_k is not None and succeeded < top_k:
            take = min(take, top_k - succeeded)
        run(queue[: max(1, take)])
        queue = queue[max(1, take):]
    return evaluated


def _rank_key(result: TuningResult) -> Tuple[int, float]:
    """Simulated first (fastest on top), then pruned by prediction,
    then failures."""
    if result.ok:
        return (0, -result.tflops)
    if result.pruned:
        return (1, -(result.predicted_tflops or 0.0))
    return (2, 0.0)
