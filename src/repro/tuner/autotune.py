"""The parallel mapping autotuner.

``autotune`` turns the paper's "tuning is data, not code" observation
into a subsystem: it sweeps a :class:`MappingSearchSpace`, builds one
mapped kernel per candidate, batch-compiles them through
``api.compile_many`` (sharing the content-keyed compile cache across
workers), times each on the simulated GPU, and returns a ranked
:class:`TuningReport`. Infeasible mappings — shared-memory
over-subscription, invalid instance trees — are recorded as failures
rather than aborting the sweep, mirroring how the compiler reports
them instead of silently mis-compiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro import api
from repro.compiler.passes import CompileOptions
from repro.errors import CypressError
from repro.kernels.common import KernelBuild
from repro.machine.machine import MachineModel
from repro.tuner.search_space import MappingSearchSpace

#: ``build_fn(machine, **candidate) -> KernelBuild``
BuildFn = Callable[..., KernelBuild]


@dataclass
class TuningResult:
    """One candidate's outcome."""

    candidate: Dict[str, Any]
    tflops: Optional[float] = None
    kernel_name: Optional[str] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.tflops is not None

    def label(self) -> str:
        c = self.candidate
        parts = []
        shown = set()
        if {"tile_m", "tile_n", "tile_k"} <= set(c):
            parts.append(f"{c['tile_m']}x{c['tile_n']}x{c['tile_k']}")
            shown |= {"tile_m", "tile_n", "tile_k"}
        for key, short in (
            ("wgs", "wgs"), ("pipeline", "pipe"),
            ("warpspecialize", "ws"),
        ):
            if key in c:
                parts.append(f"{short}={c[key]}")
                shown.add(key)
        for key in sorted(set(c) - shown):
            parts.append(f"{key}={c[key]}")
        return " ".join(parts) or "<defaults>"


@dataclass
class TuningReport:
    """Ranked sweep results: feasible candidates first, best on top."""

    results: List[TuningResult] = field(default_factory=list)

    @property
    def best(self) -> TuningResult:
        for result in self.results:
            if result.ok:
                return result
        raise CypressError(
            "autotune found no feasible mapping in the search space"
        )

    @property
    def feasible(self) -> List[TuningResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[TuningResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        """A ranked table in the style of the paper's exploration."""
        lines = [f"{'mapping':<40} {'TFLOP/s':>9}"]
        for result in self.results:
            if result.ok:
                lines.append(f"{result.label():<40} {result.tflops:>9.1f}")
            else:
                reason = (result.error or "").split(";")[0][:34]
                lines.append(f"{result.label():<40}      — ({reason})")
        return "\n".join(lines)


def autotune(
    build_fn: BuildFn,
    machine: MachineModel,
    space: MappingSearchSpace,
    *,
    options: Optional[CompileOptions] = None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    simulate_machine: Optional[MachineModel] = None,
) -> TuningReport:
    """Sweep a mapping search space and rank candidates by throughput.

    Args:
        build_fn: builder called as ``build_fn(machine, **candidate)``;
            pass a ``functools.partial``/lambda to close over problem
            sizes, e.g. ``lambda m, **p: build_gemm(m, N, N, N, **p)``.
        machine: the machine candidates are mapped to.
        space: the declarative candidate enumeration.
        options: compile options for every candidate (defaults to
            caching on and verify-at-ends — autotuning trusts the
            compiler and wants throughput).
        executor / max_workers: forwarded to ``api.compile_many``.
        simulate_machine: machine for timing; defaults to ``machine``.
    """
    if options is None:
        options = CompileOptions(verify="ends")
    simulate_machine = simulate_machine or machine

    candidates = space.as_list()
    results: List[TuningResult] = []
    builds: List[KernelBuild] = []
    build_slots: List[int] = []
    for index, candidate in enumerate(candidates):
        results.append(TuningResult(candidate=candidate))
        try:
            build = build_fn(machine, **candidate)
        except (CypressError, TypeError) as error:
            # TypeError covers builders whose signature lacks a swept
            # axis (e.g. attention builders take q_tile, not tile_m):
            # the mismatch is reported per candidate, not fatal.
            results[index].error = str(error)
            continue
        results[index].kernel_name = build.name
        builds.append(build)
        build_slots.append(index)

    kernels = api.compile_many(
        builds,
        options=options,
        executor=executor,
        max_workers=max_workers,
        raise_on_error=False,
    )
    for index, kernel in zip(build_slots, kernels):
        if isinstance(kernel, api.CompileFailure):
            results[index].error = str(kernel.error)
            continue
        results[index].tflops = api.simulate(
            kernel, simulate_machine
        ).tflops

    results.sort(key=lambda r: -(r.tflops if r.ok else float("-inf")))
    return TuningReport(results=results)
