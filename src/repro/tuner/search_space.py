"""Declarative mapping search spaces (paper section 5.4).

Because a mapping specification is data, a tuning sweep is just the
cross product of parameter choices — no edits to the logical program.
:class:`MappingSearchSpace` enumerates candidate parameter dicts that
plug directly into the keyword arguments of the GEMM-family ``build_*``
functions in the kernel zoo (``tile_m``/``tile_n``/``tile_k``, ``wgs``,
``pipeline``, ``warpspecialize``); builders with different knobs
remap the dict inside the ``autotune`` builder closure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple


def wgmma_row_constraint(candidate: Dict[str, Any]) -> bool:
    """Warp-level MMA needs 64-row warpgroup tiles (tile_m/wgs % 64 == 0)."""
    return candidate["tile_m"] // candidate["wgs"] % 64 == 0


@dataclass
class MappingSearchSpace:
    """The cross product of mapping choices for one kernel family.

    Attributes:
        tiles: (tile_m, tile_n) output-tile shapes.
        tile_k: K-reduction tile extents.
        warpgroups: warpgroup counts per block.
        pipeline_depths: software-pipeline depths.
        warpspecialize: whether to split DMA and compute warps.
        constraint: optional predicate over a candidate dict; candidates
            it rejects are skipped (defaults to the WGMMA row-divisibility
            rule every GEMM-shaped kernel in the zoo needs).
        extra: additional named axes swept verbatim, e.g.
            ``{"accumulator": ("register", "shared")}``.
    """

    tiles: Sequence[Tuple[int, int]] = ((256, 256), (128, 256), (128, 128))
    tile_k: Sequence[int] = (64,)
    warpgroups: Sequence[int] = (1, 2)
    pipeline_depths: Sequence[int] = (1, 2, 3, 4)
    warpspecialize: Sequence[bool] = (True, False)
    constraint: Optional[Callable[[Dict[str, Any]], bool]] = (
        wgmma_row_constraint
    )
    extra: Dict[str, Sequence[Any]] = field(default_factory=dict)

    def candidates(self) -> Iterator[Dict[str, Any]]:
        """Yield every candidate parameter dict passing the constraint."""
        extra_keys = sorted(self.extra)
        extra_axes = [tuple(self.extra[k]) for k in extra_keys]
        for (tile_m, tile_n), tile_k, wgs, pipeline, warpspec in (
            itertools.product(
                self.tiles,
                self.tile_k,
                self.warpgroups,
                self.pipeline_depths,
                self.warpspecialize,
            )
        ):
            base = {
                "tile_m": tile_m,
                "tile_n": tile_n,
                "tile_k": tile_k,
                "wgs": wgs,
                "pipeline": pipeline,
                "warpspecialize": warpspec,
            }
            for extra_values in itertools.product(*extra_axes):
                candidate = dict(base, **dict(zip(extra_keys, extra_values)))
                if self.constraint is not None and not self.constraint(
                    candidate
                ):
                    continue
                yield candidate

    def __len__(self) -> int:
        return sum(1 for _ in self.candidates())

    def as_list(self) -> List[Dict[str, Any]]:
        """Materialize :meth:`candidates` as a list."""
        return list(self.candidates())
