"""Mapping autotuning (paper section 5.4, as a subsystem).

The separation of logical program and mapping specification makes the
search over mappings data: :class:`MappingSearchSpace` declares the
candidate axes, and :func:`autotune` compiles candidates in parallel
through the cached pass-manager pipeline and ranks them on the
simulated GPU.

    from repro.tuner import MappingSearchSpace, autotune
    report = autotune(
        lambda m, **p: build_gemm(m, 4096, 4096, 4096, **p),
        hopper_machine(),
        MappingSearchSpace(),
    )
    print(report.summary())
    print(report.best.label())
"""

from repro.tuner.autotune import TuningReport, TuningResult, autotune
from repro.tuner.search_space import MappingSearchSpace, wgmma_row_constraint

__all__ = [
    "MappingSearchSpace",
    "TuningReport",
    "TuningResult",
    "autotune",
    "wgmma_row_constraint",
]
