"""Mapping autotuning (paper section 5.4, as a subsystem).

The separation of logical program and mapping specification makes the
search over mappings data: :class:`MappingSearchSpace` declares the
candidate axes, :class:`AnalyticCostModel` predicts each candidate's
latency and occupancy straight from the mapping arithmetic (no compiler
pass executed), and :func:`autotune` runs the two-stage search — rank
the whole space analytically, then compile and simulate only the top-k
survivors through the cached pass-manager pipeline.

    from repro.tuner import MappingSearchSpace, autotune
    report = autotune(
        lambda m, **p: build_gemm(m, 4096, 4096, 4096, **p),
        hopper_machine(),
        MappingSearchSpace(),
        top_k=5,                      # omit for the exhaustive sweep
    )
    print(report.summary())
    print(report.best.label())
    print(report.spearman())          # predicted-vs-simulated honesty

See ``docs/tuning.md`` for the full guide.
"""

from repro.tuner.autotune import (
    RankedCandidate,
    SearchStats,
    TuningReport,
    TuningResult,
    autotune,
    rank_candidates,
)
from repro.tuner.costmodel import (
    AGREEMENT_FACTOR,
    AnalyticCostModel,
    CostEstimate,
    default_cost_model,
    spearman,
)
from repro.tuner.search_space import MappingSearchSpace, wgmma_row_constraint

__all__ = [
    "AGREEMENT_FACTOR",
    "AnalyticCostModel",
    "CostEstimate",
    "MappingSearchSpace",
    "RankedCandidate",
    "SearchStats",
    "TuningReport",
    "TuningResult",
    "autotune",
    "default_cost_model",
    "rank_candidates",
    "spearman",
    "wgmma_row_constraint",
]
