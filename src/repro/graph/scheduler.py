"""Critical-path execution of task graphs on the serving runtime.

:class:`GraphScheduler` turns a :class:`~repro.graph.taskgraph.
TaskGraph` into traffic for an existing :class:`~repro.runtime.server.
RuntimeServer`: every node goes through the ordinary ``submit`` path —
per-node shape bucketing, the priority queue, micro-batching of
same-bucket requests, both compile-cache tiers — so a graph costs the
server nothing it was not already built to do. Ready nodes (all
predecessors resolved) are submitted immediately and concurrently;
their ``priority`` is the node's **critical path** — the cost-model
predicted cycles of the longest chain it gates — so when workers are
scarce the launch blocking the most downstream work runs first.

With ``inputs=`` the graph also carries data: node arguments are
gathered from shared root arrays through the bound references before
submission, and written results scatter back on completion, flowing
producer outputs into consumer inputs across the worker pool. This
requires every node's shape to equal its serving bucket (padding a
*dependent* launch is not semantics-preserving in general); timing-only
graphs have no such restriction.

Failure is **partial**: a node that fails at execution takes down only
its dependent cone (transitive successors are marked skipped — they
could never run), while independent subgraphs complete normally;
:class:`GraphResult` reports the per-node outcomes. Only a graph in
which no node succeeded fails its future outright.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import CypressError
from repro.graph.taskgraph import GraphNode, TaskGraph
from repro.obs.profiler import PHASES

if TYPE_CHECKING:  # pragma: no cover - import cycle: server imports us
    from repro.runtime.server import RuntimeResult, RuntimeServer


def materialize_root_arrays(
    graph: TaskGraph, inputs: Optional[Mapping[str, np.ndarray]]
) -> Dict[int, np.ndarray]:
    """Realize every graph tensor as a numpy array.

    Root tensors named in ``inputs`` are copied in (contiguous, cast to
    the tensor's dtype); unnamed roots start at zero. Views share their
    base's buffer through ``reshape``, so a write through a view is a
    write to the base — mirroring how dependence inference treats them.

    Args:
        graph: a builder-produced graph (its ``tensors`` table must be
            populated).
        inputs: name -> array for any subset of the *root* (non-view)
            tensors.

    Returns:
        ``{LogicalTensor uid: array}`` covering every declared tensor.

    Raises:
        CypressError: an input names an unknown or view tensor, or its
            shape does not match the declaration.
    """
    if not graph.tensors:
        raise CypressError(
            "this graph carries no tensor table (hand-constructed?); "
            "functional execution needs a GraphBuilder-produced graph"
        )
    inputs = dict(inputs or {})
    arrays: Dict[int, np.ndarray] = {}
    for name, tensor in graph.tensors.items():
        if tensor.is_view:
            continue
        given = inputs.pop(name, None)
        np_dtype = tensor.dtype.to_numpy()
        if given is None:
            arrays[tensor.tensor.uid] = np.zeros(tensor.shape, np_dtype)
            continue
        if tuple(given.shape) != tuple(tensor.shape):
            raise CypressError(
                f"input {name!r} has shape {tuple(given.shape)}; the "
                f"graph declares {tuple(tensor.shape)}"
            )
        # One unconditional copy: contiguous, right dtype, caller's
        # array never mutated by the graph's write-backs.
        arrays[tensor.tensor.uid] = np.array(
            given, dtype=np_dtype, order="C"
        )
    if inputs:
        unknown = ", ".join(sorted(repr(n) for n in inputs))
        raise CypressError(
            f"inputs name unknown or view tensors: {unknown} (views "
            "share their base's storage; pass the base instead)"
        )
    for tensor in graph.tensors.values():
        if tensor.is_view:
            base = arrays[tensor.root().tensor.uid]
            arrays[tensor.tensor.uid] = base.reshape(tensor.shape)
    return arrays


@dataclass
class GraphResult:
    """What a resolved graph future carries.

    A graph completes even when some nodes fail: a node-execution
    failure takes down only its **dependent cone** (the transitive
    successors, which could never run), while independent subgraphs
    keep executing to completion. ``failed`` and ``skipped`` report
    that partial outcome per node; a graph in which *no* node succeeded
    fails its future outright instead.

    Attributes:
        graph: the executed graph.
        results: node uid -> the node's :class:`~repro.runtime.server.
            RuntimeResult` (succeeded nodes only).
        makespan_s: wall time from ``submit_graph`` to the last node
            settling.
        outputs: final root arrays (name -> array) when the graph
            carried data; ``None`` for timing-only execution. With
            failed nodes, arrays their cone never wrote hold the last
            successfully written values (zeros for untouched roots).
        failed: node uid -> the exception that failed it.
        skipped: node uid -> the failed ancestor uid whose cone
            swallowed it (never submitted).
    """

    graph: TaskGraph
    results: Dict[int, "RuntimeResult"]
    makespan_s: float
    outputs: Optional[Dict[str, np.ndarray]] = None
    failed: Dict[int, BaseException] = field(default_factory=dict)
    skipped: Dict[int, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether every node succeeded."""
        return not self.failed and not self.skipped

    def outcomes(self) -> Dict[int, str]:
        """Per-node outcome: ``"ok"``, ``"failed"``, or ``"skipped"``."""
        report = {uid: "ok" for uid in self.results}
        report.update({uid: "failed" for uid in self.failed})
        report.update({uid: "skipped" for uid in self.skipped})
        return report

    @property
    def total_sim_s(self) -> float:
        """Sum of per-node simulated execution times (the serial cost
        the graph's parallelism amortizes)."""
        return sum(r.gpu.seconds for r in self.results.values())


@dataclass
class GraphExecution:
    """A handle on one in-flight graph: the completion future plus the
    per-node futures as they are submitted."""

    graph: TaskGraph
    future: "Future[GraphResult]"
    node_futures: Dict[int, Future] = field(default_factory=dict)

    def result(self, timeout: Optional[float] = None) -> GraphResult:
        """Block for graph completion (convenience for
        ``.future.result``)."""
        return self.future.result(timeout=timeout)


class GraphScheduler:
    """Executes task graphs on a :class:`~repro.runtime.server.
    RuntimeServer` worker pool, critical path first.

    Args:
        server: the serving runtime nodes are submitted to.
        cost_model: analytic model for node weights; defaults to a
            fresh :class:`~repro.tuner.costmodel.AnalyticCostModel`
            (verdicts are memoized process-wide either way).
    """

    def __init__(self, server: "RuntimeServer", cost_model=None) -> None:
        self.server = server
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    def priorities(self, graph: TaskGraph, base: int = 0) -> Dict[int, int]:
        """Integer submit priorities from the cost-model critical path.

        Nodes are densely ranked by longest-path-to-sink: the deepest
        node gets the highest priority. Ranking (instead of raw cycle
        counts) keeps graph priorities comparable to scalar traffic
        submitted around the graph at ``base``.
        """
        path = graph.critical_path(self.cost_model)
        depths = sorted(set(path.values()))
        rank = {depth: index + 1 for index, depth in enumerate(depths)}
        return {uid: base + rank[depth] for uid, depth in path.items()}

    def execute(
        self,
        graph: TaskGraph,
        *,
        inputs: Optional[Mapping[str, np.ndarray]] = None,
        priority: int = 0,
    ) -> GraphExecution:
        """Submit a graph; returns immediately with a
        :class:`GraphExecution`.

        Args:
            graph: the dependence-inferred DAG to run.
            inputs: optional root arrays (name -> array); when given,
                data flows producer -> consumer through the graph and
                ``GraphResult.outputs`` holds the final root arrays.
                Requires every node's shape to already equal its
                serving bucket.
            priority: base priority; node priorities stack their
                critical-path rank on top.

        Returns:
            The execution handle. Its ``future`` resolves to a
            :class:`GraphResult` even when nodes fail — a failed node
            skips only its dependent cone (see
            :attr:`GraphResult.failed` / :attr:`GraphResult.skipped`) —
            and raises only when no node succeeded, when a kernel
            lookup failed, or when the server shut down mid-graph.

        Raises:
            CypressError: empty graph, or ``inputs`` given while some
                node's shape is not bucket-aligned.
        """
        if not len(graph):
            raise CypressError("cannot execute an empty task graph")
        # One registry lookup + bucketing per node, up front; the
        # submit fast lane reuses these instead of re-deriving them on
        # every launch. A lookup failure (unknown kernel) resolves the
        # graph future instead of raising, matching per-node submit.
        lookups: Dict[int, Any] = {}
        lookup_error: Optional[Exception] = None
        try:
            for node in graph.nodes:
                registered = self.server.registry.get(node.kernel)
                lookups[node.uid] = (
                    registered,
                    registered.bucket(node.shape),
                )
        except Exception as error:
            lookup_error = error
        arrays: Optional[Dict[int, np.ndarray]] = None
        if inputs is not None:
            if lookup_error is not None:
                raise lookup_error
            for node in graph.nodes:
                bucket = lookups[node.uid][1]
                if bucket.as_dict() != node.shape:
                    raise CypressError(
                        f"graph node {node.label!r} has shape "
                        f"{node.shape}, which buckets to "
                        f"{bucket.as_dict()}; functional graph execution "
                        "requires bucket-aligned shapes (padding a "
                        "dependent launch is not semantics-preserving)"
                    )
            arrays = materialize_root_arrays(graph, inputs)
        execution = GraphExecution(graph=graph, future=Future())
        execution.future.set_running_or_notify_cancel()
        state = _ExecutionState(
            graph=graph,
            execution=execution,
            arrays=arrays,
            priorities=self.priorities(graph, base=priority),
            started=time.perf_counter(),
            lookups=lookups,
        )
        tracer = self.server.tracer
        if tracer.enabled:
            state.span = tracer.begin(
                "graph",
                "graph",
                args={"nodes": len(graph)},
                start_s=state.started,
            )
        # Registered so close(drain=False) can fail the graph future
        # instead of leaving callers blocked on a server that will
        # never serve the remaining nodes.
        self.server._register_graph(
            id(state), lambda error: self._fail(state, error)
        )
        self.server.telemetry.record_graph_submit(len(graph))
        if lookup_error is not None:
            self._fail(state, lookup_error)
            return execution
        ready = [graph.node(uid) for uid in graph.roots()]
        self._submit_ready(state, ready)
        return execution

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _submit_ready(
        self, state: "_ExecutionState", ready: List[GraphNode]
    ) -> None:
        # Highest critical path first; uid breaks ties for determinism.
        ready = sorted(
            ready, key=lambda n: (-state.priorities[n.uid], n.uid)
        )
        tracer = self.server.tracer
        profiling = PHASES.enabled
        if profiling:
            PHASES.push("graph.node")
        try:
            requests = []
            for node in ready:
                node_inputs = None
                if state.arrays is not None:
                    with state.lock:
                        node_inputs = {
                            param: ref.read(state.arrays[ref.root.uid])
                            for param, ref in node.refs.items()
                        }
                registered, bucket = state.lookups[node.uid]
                request = self.server.prepare_request(
                    registered,
                    node.shape,
                    bucket,
                    inputs=node_inputs,
                    priority=state.priorities[node.uid],
                )
                if tracer.enabled:
                    span = tracer.begin(
                        "node",
                        "graph",
                        parent=state.span,
                        args={
                            "kernel": node.kernel,
                            "label": node.label or str(node.uid),
                            "uid": node.uid,
                            "priority": state.priorities[node.uid],
                        },
                    )
                    state.node_spans[node.uid] = span
                    # The per-request root span nests under this node.
                    request.trace_parent = span
                requests.append(request)
            # One enqueue under one lock for the whole ready set,
            # instead of a full submit() round-trip per node.
            self.server.submit_prepared(requests)
        except Exception as error:
            self._fail(state, error)
            return
        finally:
            if profiling:
                PHASES.pop()
        for node, request in zip(ready, requests):
            state.execution.node_futures[node.uid] = request.future
            request.future.add_done_callback(
                lambda f, node=node: self._on_node_done(state, node, f)
            )

    def _on_node_done(
        self, state: "_ExecutionState", node: GraphNode, future: Future
    ) -> None:
        span = state.node_spans.pop(node.uid, None)
        if span is not None:
            # The request's own span already closed inside the worker
            # (before set_result), so closing the node span here keeps
            # children inside their parent.
            error = None if future.cancelled() else future.exception()
            self.server.tracer.end(
                span,
                args={"error": repr(error)} if error is not None else None,
            )
        if future.cancelled():
            self._fail(
                state,
                CypressError(
                    f"graph node {node.label!r} was cancelled "
                    "(server shutting down?)"
                ),
            )
            return
        error = future.exception()
        if error is not None:
            self._on_node_failed(state, node, error)
            return
        result = future.result()
        newly_ready: List[GraphNode] = []
        with state.lock:
            if state.failed:
                return
            state.results[node.uid] = result
            if state.arrays is not None and result.outputs:
                for param, value in result.outputs.items():
                    ref = node.refs.get(param)
                    if ref is not None:
                        ref.write(state.arrays[ref.root.uid], value)
            for succ in state.graph.successors(node.uid):
                if succ in state.skipped:
                    continue
                state.remaining[succ] -= 1
                if state.remaining[succ] == 0:
                    newly_ready.append(state.graph.node(succ))
            done = state.settled() == len(state.graph)
        if newly_ready:
            self._submit_ready(state, newly_ready)
        if done:
            self._finish(state)

    def _on_node_failed(
        self,
        state: "_ExecutionState",
        node: GraphNode,
        error: BaseException,
    ) -> None:
        """Partial-failure semantics: a failed node takes down only its
        dependent cone; independent subgraphs keep executing.

        The cone (every transitive successor) is marked skipped — those
        nodes' predecessor counts can never reach zero, so without this
        the graph would hang instead of completing. Cone nodes were
        never submitted, so there is nothing in flight to cancel.
        """
        done = False
        with state.lock:
            if state.failed:
                return
            state.node_errors[node.uid] = error
            stack = list(state.graph.successors(node.uid))
            while stack:
                uid = stack.pop()
                if uid in state.skipped:
                    continue
                state.skipped[uid] = node.uid
                stack.extend(state.graph.successors(uid))
            done = state.settled() == len(state.graph)
        if done:
            self._finish(state)

    def _finish(self, state: "_ExecutionState") -> None:
        if state.node_errors and not state.results:
            # Nothing succeeded: a partial result would carry no data,
            # so surface the first failure directly (matching the
            # historical whole-graph failure contract).
            self._fail(state, next(iter(state.node_errors.values())))
            return
        makespan = time.perf_counter() - state.started
        if state.span is not None:
            span_args: Dict[str, Any] = {"makespan_s": makespan}
            if state.node_errors:
                span_args["failed"] = len(state.node_errors)
                span_args["skipped"] = len(state.skipped)
            self.server.tracer.end(state.span, args=span_args)
        outputs = None
        if state.arrays is not None:
            outputs = {
                name: state.arrays[tensor.tensor.uid]
                for name, tensor in state.graph.tensors.items()
                if not tensor.is_view
            }
        self.server._unregister_graph(id(state))
        self.server.telemetry.record_graph_done(makespan)
        state.execution.future.set_result(
            GraphResult(
                graph=state.graph,
                results=state.results,
                makespan_s=makespan,
                outputs=outputs,
                failed=state.node_errors,
                skipped=state.skipped,
            )
        )

    def _fail(self, state: "_ExecutionState", error: BaseException) -> None:
        with state.lock:
            if state.failed:
                return
            state.failed = True
        if state.span is not None:
            # Node spans of still-in-flight launches stay open (and are
            # therefore never exported) — their request children may
            # outlive this failure.
            self.server.tracer.end(
                state.span, args={"error": repr(error)}
            )
        self.server._unregister_graph(id(state))
        self.server.telemetry.record_graph_failure()
        state.execution.future.set_exception(error)


@dataclass
class _ExecutionState:
    """Mutable bookkeeping of one in-flight graph."""

    graph: TaskGraph
    execution: GraphExecution
    arrays: Optional[Dict[int, np.ndarray]]
    priorities: Dict[int, int]
    started: float
    lookups: Dict[int, Any] = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock)
    failed: bool = False
    results: Dict[int, Any] = field(default_factory=dict)
    remaining: Dict[int, int] = field(default_factory=dict)
    #: Per-node execution failures and the cone they swallowed
    #: (skipped uid -> failed ancestor uid).
    node_errors: Dict[int, BaseException] = field(default_factory=dict)
    skipped: Dict[int, int] = field(default_factory=dict)
    #: Graph-level span and the open per-node spans (uid -> span),
    #: both ``None``/empty when the server's tracing is off.
    span: Any = None
    node_spans: Dict[int, Any] = field(default_factory=dict)

    def settled(self) -> int:
        """Nodes with a final outcome (ok, failed, or skipped); the
        graph completes when this reaches ``len(graph)``. Caller holds
        ``lock``."""
        return len(self.results) + len(self.node_errors) + len(self.skipped)

    def __post_init__(self) -> None:
        self.remaining = {
            node.uid: len(self.graph.predecessors(node.uid))
            for node in self.graph.nodes
        }
