"""Graph templates: replay a captured topology with zero region work.

Capturing a task graph is cheap but not free: every launch resolves
its bindings through the symbolic region algebra, and ``build()`` runs
dependence inference plus a cost-model critical path. For a topology
resubmitted every request — the transformer block in a serving loop —
that work is pure waste: the structure is identical each time, so the
edges and priorities are too.

A :class:`GraphTemplate` caches exactly that. While capturing,
:class:`~repro.graph.builder.GraphBuilder` folds every structural fact
that dependence inference and scheduling depend on into a topology
**fingerprint**: tensor declarations (name, shape, dtype, view base),
per-launch kernel name, shape, canonicalized mapping parameters, the
built kernel's name, each binding's owner tensor and partition-path
structure, privilege direction, and explicit ``after=`` edges, plus
the machine identity. On ``build()`` the fingerprint is looked up in a
:class:`GraphTemplateCache`:

* **miss** — regions are resolved, edges inferred, the critical path
  computed once, and the template stored;
* **hit** — the precomputed edges and critical path are replayed onto
  the freshly captured nodes with **zero region-algebra work**: no
  ``ref_region``, no ``infer_edges``, no cycle re-validation, no
  cost-model walk.

The fingerprint covers everything edge inference reads, so structural
equality implies identical edges; bindings whose structure the
fingerprint cannot describe (symbolic partition indices of unknown
kinds) simply disable templating for that capture — correctness never
depends on a template hit. Accesses on a replayed graph carry
``region=None`` (the regions were never computed); re-running
``infer_edges`` on them by hand would be conservative, but the replayed
``TaskGraph.edges`` are the exact ones captured at miss time.

The process-wide :data:`template_cache` is shared by every
``GraphBuilder`` by default; pass ``template_cache=None`` to a builder
to opt out, or a private cache to isolate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.taskgraph import GraphEdge


@dataclass(frozen=True)
class GraphTemplate:
    """The replayable part of one captured topology.

    Attributes:
        fingerprint: the structural digest this template is keyed on.
        node_count: number of launches in the topology (sanity check —
            a fingerprint hit with a different count is a collision and
            is treated as a miss).
        edges: the inferred (plus manual) dependence edges, exactly as
            ``build()`` produced them on the miss that created this
            template.
        critical_path: longest-path-to-sink per node uid under the
            default analytic cost model — the scheduler's priorities.
    """

    fingerprint: str
    node_count: int
    edges: Tuple[GraphEdge, ...]
    critical_path: Dict[int, float]


@dataclass
class TemplateCacheStats:
    """Counters for one :class:`GraphTemplateCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups: hits + misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that replayed a template."""
        return self.hits / self.lookups if self.lookups else 0.0


class GraphTemplateCache:
    """A bounded, thread-safe LRU of :class:`GraphTemplate` values.

    Args:
        capacity: templates kept; the least recently used is evicted.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.stats = TemplateCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, GraphTemplate]" = OrderedDict()

    def get(
        self, fingerprint: str, node_count: Optional[int] = None
    ) -> Optional[GraphTemplate]:
        """Look up a template (LRU-touching it); ``None`` on miss.

        Args:
            fingerprint: the topology digest.
            node_count: when given, a stored template with a different
                launch count is treated as a miss (collision guard).
        """
        with self._lock:
            template = self._entries.get(fingerprint)
            if template is not None and (
                node_count is None or template.node_count == node_count
            ):
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                return template
            self.stats.misses += 1
            return None

    def put(self, fingerprint: str, template: GraphTemplate) -> None:
        """Store a template, evicting the LRU entry over capacity."""
        with self._lock:
            self._entries[fingerprint] = template
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every template and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = TemplateCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries


#: The process-wide template cache every ``GraphBuilder`` shares by
#: default — capture a topology once anywhere, replay it everywhere.
template_cache = GraphTemplateCache()
