"""Capture API: record kernel launches, get a dependence-inferred DAG.

:class:`GraphBuilder` is the whole-program analogue of a kernel's task
body. The caller declares named root tensors (:meth:`GraphBuilder.
tensor`), optionally reshape views of them (:meth:`GraphBuilder.view`),
and records launches of *registered* kernels (the same names
:class:`~repro.runtime.RuntimeServer` serves) with each entrypoint
tensor parameter bound to a tensor or a partition piece of one::

    gb = GraphBuilder(machine)
    x = gb.tensor("X", (512, 512))
    w = gb.tensor("W", (512, 512))
    y = gb.tensor("Y", (512, 512))
    gb.launch("gemm", dict(m=512, n=512, k=512),
              reads=dict(A=x, B=w), writes=dict(C=y))
    graph = gb.build()   # edges inferred, never declared

Privileges are **not** part of the launch call's authority: the
``reads=``/``writes=`` split is validated against the kernel build's
own entrypoint task declaration, so a caller cannot under-declare a
write and break the inferred ordering. Regions come from the bound
references through the symbolic region algebra
(:mod:`repro.tensors.regions`); bindings the algebra cannot describe —
reshape views, unsupported partition kinds — degrade to conservative
edges rather than being rejected.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CypressError
from repro.frontend.mapping import canonicalize
from repro.graph.taskgraph import (
    SEQ,
    Access,
    GraphEdge,
    GraphNode,
    TaskGraph,
    infer_edges,
)
from repro.graph.template import (
    GraphTemplate,
    GraphTemplateCache,
    template_cache as _process_template_cache,
)
from repro.kernels.common import KernelBuild
from repro.machine.machine import MachineModel
from repro.obs.trace import NULL_TRACER
from repro.runtime.bucketing import Bucket
from repro.runtime.registry import KernelRegistry, default_registry
from repro.tensors.dtype import DType, f16
from repro.tensors.partition import BlocksPartition, SqueezePartition
from repro.tensors.regions import ref_region, tensor_region
from repro.tensors.tensor import LogicalTensor, TensorRef


class GraphTensor:
    """A named root tensor (or reshape view) of a task graph.

    Wraps a :class:`~repro.tensors.tensor.LogicalTensor` so bindings
    can use the ordinary partition API (``partition_by_blocks(t.ref(),
    ...)``) to name sub-tensor regions. A *view* shares its base's
    storage under a different shape; accesses through a view resolve to
    the base root for dependence inference (conservatively, unless the
    view is bound whole).
    """

    def __init__(
        self,
        name: str,
        tensor: LogicalTensor,
        base: Optional["GraphTensor"] = None,
    ) -> None:
        self.name = name
        self.tensor = tensor
        self.base = base

    @property
    def shape(self) -> Tuple[int, ...]:
        """The tensor's extents."""
        return self.tensor.shape

    @property
    def dtype(self) -> DType:
        """The tensor's element type."""
        return self.tensor.dtype

    @property
    def is_view(self) -> bool:
        """True when this tensor reshapes another graph tensor."""
        return self.base is not None

    def root(self) -> "GraphTensor":
        """The ultimate non-view tensor this one aliases."""
        out = self
        while out.base is not None:
            out = out.base
        return out

    def ref(self) -> TensorRef:
        """A reference to the whole tensor (partitionable)."""
        return self.tensor.ref()

    def __repr__(self) -> str:
        dims = "x".join(map(str, self.shape))
        alias = f" view of {self.root().name!r}" if self.is_view else ""
        return f"GraphTensor({self.name!r}[{dims}]{alias})"


class _LaunchPlan:
    """Memoized validation state of one (kernel, shape, params) triple.

    Attributes:
        build: the exact-shape :class:`KernelBuild`.
        entries: per tensor parameter, ``(name, reads, writes,
            privilege value, expected arg shape)`` in entrypoint order.
        param_set: the tensor parameter names, for binding validation.
        fp_static: the binding-independent slice of this launch's
            fingerprint contribution.
    """

    __slots__ = ("build", "entries", "param_set", "fp_static")

    def __init__(
        self,
        build: KernelBuild,
        entries: Tuple[Any, ...],
        param_set: frozenset,
        fp_static: Tuple[Any, ...],
    ) -> None:
        self.build = build
        self.entries = entries
        self.param_set = param_set
        self.fp_static = fp_static


class GraphBuilder:
    """Records kernel launches and builds a :class:`TaskGraph`.

    Args:
        machine: the machine launches will compile for (kernel builds
            need it; the graph inherits it for cost-model weighting).
        registry: servable kernels to launch; defaults to the full zoo
            (:func:`~repro.runtime.registry.default_registry`). Launch
            shapes are *not* bucket-rounded here — the graph captures
            the requested problem; the serving layer buckets per node
            exactly as it does for scalar ``submit``.
        template_cache: where :meth:`build` looks up (and stores)
            :class:`~repro.graph.template.GraphTemplate` values; the
            process-wide :data:`~repro.graph.template.template_cache`
            by default. Pass ``None`` to always run full dependence
            inference, or a private cache to isolate.
        build_memo: an external launch-plan memo (exact-shape builds
            plus validated binding plans) to share across builders
            re-capturing the same topology (a fresh dict per builder
            otherwise). Only share across builders on the same
            ``machine``.
        tracer: a :class:`~repro.obs.trace.Tracer` to record one
            ``graph.build`` span per :meth:`build` (tagged template
            hit/miss); the no-op :data:`~repro.obs.trace.NULL_TRACER`
            by default.
    """

    def __init__(
        self,
        machine: MachineModel,
        registry: Optional[KernelRegistry] = None,
        template_cache: Optional[GraphTemplateCache] = _process_template_cache,
        build_memo: Optional[Dict[Any, "_LaunchPlan"]] = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.machine = machine
        self.tracer = tracer
        self.registry = registry if registry is not None else default_registry()
        self.template_cache = template_cache
        self._tensors: Dict[str, GraphTensor] = {}
        self._by_uid: Dict[int, GraphTensor] = {}
        self._nodes: list = []
        self._manual_edges: list = []
        self._plan_memo: Dict[Any, "_LaunchPlan"] = (
            build_memo if build_memo is not None else {}
        )
        # Topology fingerprint, folded in incrementally as tensors are
        # declared and launches captured. `_fp_ok` drops to False when a
        # binding's structure cannot be described (unknown partition
        # kinds) — such captures never use the template cache.
        self._fp_parts: List[Any] = [("machine", machine.name)]
        self._fp_ok = True
        self._regions_resolved = False

    # ------------------------------------------------------------------
    # Tensor declaration
    # ------------------------------------------------------------------
    def tensor(
        self, name: str, shape: Sequence[int], dtype: DType = f16
    ) -> GraphTensor:
        """Declare a named root tensor.

        Raises:
            CypressError: the name is already declared.
        """
        if name in self._tensors:
            raise CypressError(f"graph tensor {name!r} is already declared")
        out = GraphTensor(name, LogicalTensor(name, shape, dtype))
        self._tensors[name] = out
        self._by_uid[out.tensor.uid] = out
        self._fp_parts.append(("tensor", name, tuple(shape), dtype.name))
        return out

    def view(
        self, name: str, shape: Sequence[int], of: GraphTensor
    ) -> GraphTensor:
        """Declare a reshape view sharing another tensor's elements.

        The element counts must match (a reshape, not a slice). For
        dependence inference an access through a view aliases the whole
        base tensor: exactly when bound whole, conservatively when
        partitioned (the box algebra cannot follow a reshape).

        Raises:
            CypressError: duplicate name, unknown base, or an element
                count mismatch.
        """
        if name in self._tensors:
            raise CypressError(f"graph tensor {name!r} is already declared")
        if of.tensor.uid not in self._by_uid:
            raise CypressError(
                f"view base {of.name!r} is not declared on this builder"
            )
        size = 1
        for extent in shape:
            size *= extent
        if size != of.tensor.size:
            raise CypressError(
                f"view {name!r} of shape {tuple(shape)} has {size} elements "
                f"but base {of.name!r} has {of.tensor.size}"
            )
        out = GraphTensor(
            name, LogicalTensor(name, shape, of.dtype), base=of
        )
        self._tensors[name] = out
        self._by_uid[out.tensor.uid] = out
        self._fp_parts.append(("view", name, tuple(shape), of.name))
        return out

    def tensors(self) -> Dict[str, GraphTensor]:
        """All declared tensors (roots and views), keyed by name."""
        return dict(self._tensors)

    # ------------------------------------------------------------------
    # Launch capture
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: str,
        shape: Mapping[str, int],
        *,
        reads: Optional[Mapping[str, Any]] = None,
        writes: Optional[Mapping[str, Any]] = None,
        params: Optional[Dict[str, Any]] = None,
        after: Sequence[GraphNode] = (),
        label: str = "",
    ) -> GraphNode:
        """Record one kernel launch.

        Args:
            kernel: registered serving name (must exist in the
                registry).
            shape: the kernel's named shape dimensions, exactly as
                ``RuntimeServer.submit`` takes them.
            reads / writes: entrypoint tensor parameter name ->
                :class:`GraphTensor` or :class:`TensorRef` binding. The
                split must match the privileges the kernel's task
                declaration takes — a parameter the task writes must be
                bound under ``writes``.
            params: mapping parameters forwarded to the builder
                (tile shapes etc.); defaults apply otherwise.
            after: explicit sequencing edges from earlier launches, for
                ordering the regions cannot see (side channels).
            label: display name for reports.

        Returns:
            The captured :class:`GraphNode` (usable in ``after=``).

        Raises:
            CypressError: unknown kernel, malformed shape, a binding
                for an unknown parameter, a missing/extra binding, a
                privilege-direction mismatch, a shape mismatch between
                the bound reference and the kernel argument, or a
                binding whose tensor was not declared on this builder.
        """
        registered = self.registry.get(kernel)
        shape = dict(shape)
        plan = self._plan_for(registered, shape, params)
        build = plan.build
        bindings: Dict[str, Tuple[Any, bool]] = {}
        for mapping, is_write in ((reads or {}, False), (writes or {}, True)):
            for param, bound in mapping.items():
                if param in bindings:
                    raise CypressError(
                        f"parameter {param!r} of {kernel!r} is bound twice"
                    )
                bindings[param] = (bound, is_write)
        accesses = []
        refs: Dict[str, TensorRef] = {}
        fp_bindings: List[Any] = []
        if set(bindings) != plan.param_set:
            raise CypressError(
                f"kernel {kernel!r} entrypoint takes tensor parameters "
                f"{sorted(plan.param_set)}; got bindings for "
                f"{sorted(bindings)}"
            )
        by_uid = self._by_uid
        for param, p_reads, p_writes, p_value, arg_shape in plan.entries:
            bound, declared_write = bindings[param]
            if p_writes != declared_write:
                expected = "writes" if p_writes else "reads"
                raise CypressError(
                    f"parameter {param!r} of {kernel!r} takes privilege "
                    f"{p_value!r}; bind it under {expected}="
                )
            ref = bound.ref() if isinstance(bound, GraphTensor) else bound
            if not isinstance(ref, TensorRef):
                raise CypressError(
                    f"binding for {param!r} must be a GraphTensor or "
                    f"TensorRef, got {type(bound).__name__}"
                )
            owner = by_uid.get(ref.root.uid)
            if owner is None:
                raise CypressError(
                    f"binding for {param!r} references tensor "
                    f"{ref.root.name!r} not declared on this builder"
                )
            if tuple(ref.shape) != arg_shape:
                raise CypressError(
                    f"parameter {param!r} of {kernel!r} expects shape "
                    f"{arg_shape}, got a reference of shape "
                    f"{tuple(ref.shape)}"
                )
            refs[param] = ref
            # Region deferred to build() — None until a template miss
            # forces resolution (see _resolve_regions).
            accesses.append(
                Access(
                    param=param,
                    tensor=owner.root().name,
                    root_uid=owner.root().tensor.uid,
                    region=None,
                    reads=p_reads,
                    writes=p_writes,
                )
            )
            fp_bindings.append(
                (param, p_writes, self._ref_key(owner, ref))
            )
        node = GraphNode(
            uid=len(self._nodes),
            kernel=kernel,
            shape=shape,
            build=build,
            accesses=tuple(accesses),
            refs=refs,
            label=label,
        )
        for earlier in after:
            if (
                not isinstance(earlier, GraphNode)
                or earlier.uid >= node.uid
                or self._nodes[earlier.uid] is not earlier
            ):
                raise CypressError(
                    "after= must name launches captured earlier on this "
                    "builder"
                )
            self._manual_edges.append(
                GraphEdge(src=earlier.uid, dst=node.uid, kind=SEQ)
            )
        self._fp_parts.append(
            (plan.fp_static, tuple(fp_bindings), tuple(e.uid for e in after))
        )
        self._nodes.append(node)
        return node

    def _region_for(self, owner: GraphTensor, ref: TensorRef):
        """The element set one binding touches, in root coordinates."""
        root = owner.root()
        if owner.is_view:
            # A reshape breaks the box algebra's coordinate map: a
            # whole-view binding is exactly the whole base; anything
            # narrower is conservative.
            return tensor_region(root.shape) if ref.is_whole else None
        return ref_region(ref)

    def _resolve_regions(self) -> None:
        """Fill every captured access's deferred region (idempotent)."""
        if self._regions_resolved:
            return
        for node in self._nodes:
            node.accesses = tuple(
                dataclasses.replace(
                    access,
                    region=self._region_for(
                        self._by_uid[node.refs[access.param].root.uid],
                        node.refs[access.param],
                    ),
                )
                for access in node.accesses
            )
        self._regions_resolved = True

    def _ref_key(self, owner: GraphTensor, ref: TensorRef) -> Any:
        """A structural digest of one binding, for the fingerprint.

        Covers everything dependence inference reads from the binding:
        the owner tensor and, per partition-path step, the partition
        kind, grid, geometry (block shape / kept axes), and the index
        expressions. A partition kind the digest cannot describe
        disables templating for this capture (``_fp_ok=False``) —
        never a correctness risk, only a missed fast path.
        """
        steps: List[Any] = []
        for partition, index in ref.path:
            if isinstance(partition, BlocksPartition):
                geometry: Any = partition.block_shape
            elif isinstance(partition, SqueezePartition):
                geometry = partition.kept
            else:
                self._fp_ok = False
                geometry = None
            steps.append(
                (
                    partition.kind,
                    partition.grid,
                    geometry,
                    tuple(repr(e) for e in index),
                )
            )
        return (owner.name, tuple(steps))

    def _plan_for(
        self,
        registered,
        shape: Dict[str, int],
        params: Optional[Dict[str, Any]],
    ) -> "_LaunchPlan":
        """The memoized launch plan at one exact (shape, params).

        Building the kernel, resolving its entrypoint variant, and
        walking the per-parameter privileges costs far more than the
        rest of launch capture; a topology resubmitted every request
        repeats the exact same (kernel, shape, params) triples, so all
        of it is validated once and replayed from the memo.
        """
        key = (
            registered.name,
            tuple(sorted(shape.items())),
            canonicalize(params or {}),
        )
        plan = self._plan_memo.get(key)
        if plan is None:
            missing = [d for d in registered.dims if d not in shape]
            extra = sorted(set(shape) - set(registered.dims))
            if missing or extra:
                raise CypressError(
                    f"kernel {registered.name!r} takes dimensions "
                    f"{registered.dims}; missing {missing or 'none'}, "
                    f"unknown {extra or 'none'}"
                )
            exact = Bucket(tuple((d, shape[d]) for d in registered.dims))
            build = registered.build(self.machine, exact, params)
            variant = build.spec.variant_of(build.spec.entrypoint)
            entries = tuple(
                (
                    param,
                    (privilege := variant.privilege_of(param)).reads,
                    privilege.writes,
                    privilege.value,
                    tuple(arg_shape),
                )
                for param, arg_shape in zip(
                    variant.tensor_params, build.arg_shapes
                )
            )
            plan = _LaunchPlan(
                build=build,
                entries=entries,
                param_set=frozenset(variant.tensor_params),
                fp_static=("launch", key[0], key[1], key[2], build.name),
            )
            self._plan_memo[key] = plan
        return plan

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def fingerprint(self) -> Optional[str]:
        """The capture's topology digest, or ``None`` when untemplatable.

        Two captures share a fingerprint exactly when they declare the
        same tensors/views and the same launch sequence (kernel, shape,
        params, built kernel, binding structure, privileges, explicit
        sequencing) on the same machine — everything dependence
        inference and critical-path weighting read, so equal
        fingerprints imply identical edges and priorities. Labels are
        display-only and excluded.
        """
        if not self._fp_ok:
            return None
        digest = hashlib.sha256(repr(self._fp_parts).encode())
        return digest.hexdigest()

    def build(self) -> TaskGraph:
        """Infer dependence edges and return the captured graph.

        With a template cache attached (the default), a capture whose
        :meth:`fingerprint` was built before replays the stored edges
        and critical path with zero region-algebra work: no region
        resolution, no dependence inference, no cycle re-validation, no
        cost-model walk. Replayed graphs carry ``region=None`` accesses
        — the regions were never computed. On a miss the full pipeline
        runs and its result is stored for the next capture.

        Raises:
            CypressError: no launches were captured, or explicit
                sequencing introduced a cycle.
        """
        if not self._nodes:
            raise CypressError("cannot build an empty task graph")
        tracer = self.tracer
        if not tracer.enabled:
            return self._build_graph()[0]
        with tracer.span(
            "graph.build", "graph", args={"nodes": len(self._nodes)}
        ) as span:
            graph, hit = self._build_graph()
            span.args["template"] = "hit" if hit else "miss"
        return graph

    def _build_graph(self) -> Tuple[TaskGraph, bool]:
        """Template lookup + (on miss) full inference; returns the
        graph and whether the template cache answered."""
        cache = self.template_cache
        fingerprint = self.fingerprint() if cache is not None else None
        if fingerprint is not None:
            template = cache.get(fingerprint, node_count=len(self._nodes))
            if template is not None:
                graph = TaskGraph(
                    self._nodes,
                    template.edges,
                    self.machine,
                    tensors=self._tensors,
                    validate=False,
                )
                graph._cached_critical_path = dict(template.critical_path)
                return graph, True
        self._resolve_regions()
        edges = list(self._manual_edges) + infer_edges(self._nodes)
        graph = TaskGraph(
            self._nodes, edges, self.machine, tensors=self._tensors
        )
        if fingerprint is not None:
            cache.put(
                fingerprint,
                GraphTemplate(
                    fingerprint=fingerprint,
                    node_count=len(self._nodes),
                    edges=graph.edges,
                    critical_path=dict(graph.critical_path()),
                ),
            )
        return graph, False

    def __len__(self) -> int:
        return len(self._nodes)
