"""Capture API: record kernel launches, get a dependence-inferred DAG.

:class:`GraphBuilder` is the whole-program analogue of a kernel's task
body. The caller declares named root tensors (:meth:`GraphBuilder.
tensor`), optionally reshape views of them (:meth:`GraphBuilder.view`),
and records launches of *registered* kernels (the same names
:class:`~repro.runtime.RuntimeServer` serves) with each entrypoint
tensor parameter bound to a tensor or a partition piece of one::

    gb = GraphBuilder(machine)
    x = gb.tensor("X", (512, 512))
    w = gb.tensor("W", (512, 512))
    y = gb.tensor("Y", (512, 512))
    gb.launch("gemm", dict(m=512, n=512, k=512),
              reads=dict(A=x, B=w), writes=dict(C=y))
    graph = gb.build()   # edges inferred, never declared

Privileges are **not** part of the launch call's authority: the
``reads=``/``writes=`` split is validated against the kernel build's
own entrypoint task declaration, so a caller cannot under-declare a
write and break the inferred ordering. Regions come from the bound
references through the symbolic region algebra
(:mod:`repro.tensors.regions`); bindings the algebra cannot describe —
reshape views, unsupported partition kinds — degrade to conservative
edges rather than being rejected.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import CypressError
from repro.frontend.mapping import canonicalize
from repro.graph.taskgraph import (
    SEQ,
    Access,
    GraphEdge,
    GraphNode,
    TaskGraph,
    infer_edges,
)
from repro.kernels.common import KernelBuild
from repro.machine.machine import MachineModel
from repro.runtime.bucketing import Bucket
from repro.runtime.registry import KernelRegistry, default_registry
from repro.tensors.dtype import DType, f16
from repro.tensors.regions import ref_region, tensor_region
from repro.tensors.tensor import LogicalTensor, TensorRef


class GraphTensor:
    """A named root tensor (or reshape view) of a task graph.

    Wraps a :class:`~repro.tensors.tensor.LogicalTensor` so bindings
    can use the ordinary partition API (``partition_by_blocks(t.ref(),
    ...)``) to name sub-tensor regions. A *view* shares its base's
    storage under a different shape; accesses through a view resolve to
    the base root for dependence inference (conservatively, unless the
    view is bound whole).
    """

    def __init__(
        self,
        name: str,
        tensor: LogicalTensor,
        base: Optional["GraphTensor"] = None,
    ) -> None:
        self.name = name
        self.tensor = tensor
        self.base = base

    @property
    def shape(self) -> Tuple[int, ...]:
        """The tensor's extents."""
        return self.tensor.shape

    @property
    def dtype(self) -> DType:
        """The tensor's element type."""
        return self.tensor.dtype

    @property
    def is_view(self) -> bool:
        """True when this tensor reshapes another graph tensor."""
        return self.base is not None

    def root(self) -> "GraphTensor":
        """The ultimate non-view tensor this one aliases."""
        out = self
        while out.base is not None:
            out = out.base
        return out

    def ref(self) -> TensorRef:
        """A reference to the whole tensor (partitionable)."""
        return self.tensor.ref()

    def __repr__(self) -> str:
        dims = "x".join(map(str, self.shape))
        alias = f" view of {self.root().name!r}" if self.is_view else ""
        return f"GraphTensor({self.name!r}[{dims}]{alias})"


class GraphBuilder:
    """Records kernel launches and builds a :class:`TaskGraph`.

    Args:
        machine: the machine launches will compile for (kernel builds
            need it; the graph inherits it for cost-model weighting).
        registry: servable kernels to launch; defaults to the full zoo
            (:func:`~repro.runtime.registry.default_registry`). Launch
            shapes are *not* bucket-rounded here — the graph captures
            the requested problem; the serving layer buckets per node
            exactly as it does for scalar ``submit``.
    """

    def __init__(
        self,
        machine: MachineModel,
        registry: Optional[KernelRegistry] = None,
    ) -> None:
        self.machine = machine
        self.registry = registry if registry is not None else default_registry()
        self._tensors: Dict[str, GraphTensor] = {}
        self._by_uid: Dict[int, GraphTensor] = {}
        self._nodes: list = []
        self._manual_edges: list = []
        self._build_memo: Dict[Any, KernelBuild] = {}

    # ------------------------------------------------------------------
    # Tensor declaration
    # ------------------------------------------------------------------
    def tensor(
        self, name: str, shape: Sequence[int], dtype: DType = f16
    ) -> GraphTensor:
        """Declare a named root tensor.

        Raises:
            CypressError: the name is already declared.
        """
        if name in self._tensors:
            raise CypressError(f"graph tensor {name!r} is already declared")
        out = GraphTensor(name, LogicalTensor(name, shape, dtype))
        self._tensors[name] = out
        self._by_uid[out.tensor.uid] = out
        return out

    def view(
        self, name: str, shape: Sequence[int], of: GraphTensor
    ) -> GraphTensor:
        """Declare a reshape view sharing another tensor's elements.

        The element counts must match (a reshape, not a slice). For
        dependence inference an access through a view aliases the whole
        base tensor: exactly when bound whole, conservatively when
        partitioned (the box algebra cannot follow a reshape).

        Raises:
            CypressError: duplicate name, unknown base, or an element
                count mismatch.
        """
        if name in self._tensors:
            raise CypressError(f"graph tensor {name!r} is already declared")
        if of.tensor.uid not in self._by_uid:
            raise CypressError(
                f"view base {of.name!r} is not declared on this builder"
            )
        size = 1
        for extent in shape:
            size *= extent
        if size != of.tensor.size:
            raise CypressError(
                f"view {name!r} of shape {tuple(shape)} has {size} elements "
                f"but base {of.name!r} has {of.tensor.size}"
            )
        out = GraphTensor(
            name, LogicalTensor(name, shape, of.dtype), base=of
        )
        self._tensors[name] = out
        self._by_uid[out.tensor.uid] = out
        return out

    def tensors(self) -> Dict[str, GraphTensor]:
        """All declared tensors (roots and views), keyed by name."""
        return dict(self._tensors)

    # ------------------------------------------------------------------
    # Launch capture
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: str,
        shape: Mapping[str, int],
        *,
        reads: Optional[Mapping[str, Any]] = None,
        writes: Optional[Mapping[str, Any]] = None,
        params: Optional[Dict[str, Any]] = None,
        after: Sequence[GraphNode] = (),
        label: str = "",
    ) -> GraphNode:
        """Record one kernel launch.

        Args:
            kernel: registered serving name (must exist in the
                registry).
            shape: the kernel's named shape dimensions, exactly as
                ``RuntimeServer.submit`` takes them.
            reads / writes: entrypoint tensor parameter name ->
                :class:`GraphTensor` or :class:`TensorRef` binding. The
                split must match the privileges the kernel's task
                declaration takes — a parameter the task writes must be
                bound under ``writes``.
            params: mapping parameters forwarded to the builder
                (tile shapes etc.); defaults apply otherwise.
            after: explicit sequencing edges from earlier launches, for
                ordering the regions cannot see (side channels).
            label: display name for reports.

        Returns:
            The captured :class:`GraphNode` (usable in ``after=``).

        Raises:
            CypressError: unknown kernel, malformed shape, a binding
                for an unknown parameter, a missing/extra binding, a
                privilege-direction mismatch, a shape mismatch between
                the bound reference and the kernel argument, or a
                binding whose tensor was not declared on this builder.
        """
        registered = self.registry.get(kernel)
        shape = dict(shape)
        missing = [d for d in registered.dims if d not in shape]
        extra = sorted(set(shape) - set(registered.dims))
        if missing or extra:
            raise CypressError(
                f"kernel {kernel!r} takes dimensions {registered.dims}; "
                f"missing {missing or 'none'}, unknown {extra or 'none'}"
            )
        build = self._build_for(registered, shape, params)
        variant = build.spec.variant_of(build.spec.entrypoint)
        bindings: Dict[str, Tuple[Any, bool]] = {}
        for mapping, is_write in ((reads or {}, False), (writes or {}, True)):
            for param, bound in mapping.items():
                if param in bindings:
                    raise CypressError(
                        f"parameter {param!r} of {kernel!r} is bound twice"
                    )
                bindings[param] = (bound, is_write)
        accesses = []
        refs: Dict[str, TensorRef] = {}
        tensor_params = variant.tensor_params
        if set(bindings) != set(tensor_params):
            raise CypressError(
                f"kernel {kernel!r} entrypoint takes tensor parameters "
                f"{tensor_params}; got bindings for {sorted(bindings)}"
            )
        for param, arg_shape in zip(tensor_params, build.arg_shapes):
            bound, declared_write = bindings[param]
            privilege = variant.privilege_of(param)
            if privilege.writes != declared_write:
                expected = "writes" if privilege.writes else "reads"
                raise CypressError(
                    f"parameter {param!r} of {kernel!r} takes privilege "
                    f"{privilege.value!r}; bind it under {expected}="
                )
            ref = bound.ref() if isinstance(bound, GraphTensor) else bound
            if not isinstance(ref, TensorRef):
                raise CypressError(
                    f"binding for {param!r} must be a GraphTensor or "
                    f"TensorRef, got {type(bound).__name__}"
                )
            owner = self._by_uid.get(ref.root.uid)
            if owner is None:
                raise CypressError(
                    f"binding for {param!r} references tensor "
                    f"{ref.root.name!r} not declared on this builder"
                )
            if tuple(ref.shape) != tuple(arg_shape):
                raise CypressError(
                    f"parameter {param!r} of {kernel!r} expects shape "
                    f"{tuple(arg_shape)}, got a reference of shape "
                    f"{tuple(ref.shape)}"
                )
            refs[param] = ref
            accesses.append(
                self._access(param, owner, ref, privilege)
            )
        node = GraphNode(
            uid=len(self._nodes),
            kernel=kernel,
            shape=shape,
            build=build,
            accesses=tuple(accesses),
            refs=refs,
            label=label,
        )
        for earlier in after:
            if (
                not isinstance(earlier, GraphNode)
                or earlier.uid >= node.uid
                or self._nodes[earlier.uid] is not earlier
            ):
                raise CypressError(
                    "after= must name launches captured earlier on this "
                    "builder"
                )
            self._manual_edges.append(
                GraphEdge(src=earlier.uid, dst=node.uid, kind=SEQ)
            )
        self._nodes.append(node)
        return node

    def _access(self, param, owner: GraphTensor, ref: TensorRef, privilege):
        """Resolve one binding to an :class:`Access` on its root."""
        root = owner.root()
        if owner.is_view:
            # A reshape breaks the box algebra's coordinate map: a
            # whole-view binding is exactly the whole base; anything
            # narrower is conservative.
            region = tensor_region(root.shape) if ref.is_whole else None
        else:
            region = ref_region(ref)
        return Access(
            param=param,
            tensor=root.name,
            root_uid=root.tensor.uid,
            region=region,
            reads=privilege.reads,
            writes=privilege.writes,
        )

    def _build_for(
        self,
        registered,
        shape: Dict[str, int],
        params: Optional[Dict[str, Any]],
    ) -> KernelBuild:
        """Instantiate (memoized) the kernel build at the exact shape."""
        key = (
            registered.name,
            tuple(sorted(shape.items())),
            canonicalize(params or {}),
        )
        build = self._build_memo.get(key)
        if build is None:
            exact = Bucket(tuple((d, shape[d]) for d in registered.dims))
            build = registered.build(self.machine, exact, params)
            self._build_memo[key] = build
        return build

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def build(self) -> TaskGraph:
        """Infer dependence edges and return the captured graph.

        Raises:
            CypressError: no launches were captured, or explicit
                sequencing introduced a cycle.
        """
        if not self._nodes:
            raise CypressError("cannot build an empty task graph")
        edges = list(self._manual_edges) + infer_edges(self._nodes)
        return TaskGraph(
            self._nodes, edges, self.machine, tensors=self._tensors
        )

    def __len__(self) -> int:
        return len(self._nodes)
