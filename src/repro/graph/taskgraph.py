"""Multi-kernel task graphs with region-inferred dependences.

A :class:`TaskGraph` is a DAG of kernel launches over shared root
tensors. Its edges are **inferred**, never user-declared: every launch
records one :class:`Access` per entrypoint tensor parameter (the
privilege comes from the kernel's task declaration, the element set
from the bound :class:`~repro.tensors.tensor.TensorRef` through the
symbolic region algebra), and :func:`infer_edges` intersects the
accesses of earlier launches with each new one — read-after-write,
write-after-read, and write-after-write conflicts become edges, exactly
the Legion-style dependence rule the paper applies *inside* one kernel,
lifted to whole-program scope.

Inference keeps a per-root **frontier** of live accesses; a write whose
region provably covers an earlier access retires that access (any later
conflict is ordered transitively through the new writer), so chains of
whole-tensor producers/consumers — the common case — infer in time
linear in the number of launches. Partition chains the region algebra
cannot describe (and reshape views, whose element correspondence is not
box-shaped) get ``region=None`` accesses and fall back to conservative
edges: ordered whenever privileges conflict, marked ``exact=False``.

Scheduling order comes from :meth:`TaskGraph.critical_path`: each node
is weighted by the analytic cost model's predicted cycles and
prioritized by its longest path to a sink, so the scheduler starts the
launches that gate the most downstream work first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CypressError
from repro.kernels.common import KernelBuild
from repro.machine.machine import MachineModel
from repro.tensors.regions import Region

#: Edge kinds: true dataflow, anti, output, and user-sequenced edges.
RAW = "RAW"
WAR = "WAR"
WAW = "WAW"
SEQ = "SEQ"


@dataclass(frozen=True)
class Access:
    """One launch's privilege over one root tensor.

    Attributes:
        param: entrypoint parameter name the binding fills.
        tensor: graph-level name of the root tensor accessed.
        root_uid: identity of the root ``LogicalTensor`` (views resolve
            to their base, so aliasing reshapes land on one root).
        region: element set in root coordinates, or ``None`` when the
            region algebra cannot describe the binding (conservative).
        reads / writes: the privilege the kernel's task declaration
            takes over this parameter.
    """

    param: str
    tensor: str
    root_uid: int
    region: Optional[Region]
    reads: bool
    writes: bool

    def conflicts_with(self, later: "Access") -> Optional[str]:
        """The dependence kind this access forces on a ``later`` one.

        Returns ``"RAW"``/``"WAR"``/``"WAW"`` when the privileges
        conflict (at least one side writes), ``None`` for read-read.
        Region overlap is checked separately.
        """
        if self.root_uid != later.root_uid:
            return None
        if self.writes and later.writes:
            return WAW
        if self.writes and later.reads:
            return RAW
        if self.reads and later.writes:
            return WAR
        return None

    def may_overlap(self, other: "Access") -> bool:
        """Do the two element sets possibly intersect?

        Exact (region algebra) when both regions are describable;
        conservatively ``True`` when either is ``None``.
        """
        if self.region is None or other.region is None:
            return True
        return self.region.intersects(other.region)


@dataclass(frozen=True)
class GraphEdge:
    """One inferred (or user-sequenced) dependence ``src -> dst``.

    Attributes:
        src / dst: node uids, ``src`` must complete before ``dst``.
        kind: ``"RAW"``, ``"WAR"``, ``"WAW"``, or ``"SEQ"`` (explicit
            ``after=`` sequencing).
        tensor: the root tensor the conflict is on (``None`` for SEQ).
        exact: ``True`` when the region algebra proved the overlap;
            ``False`` for conservative fallback edges.
    """

    src: int
    dst: int
    kind: str
    tensor: Optional[str] = None
    exact: bool = True


@dataclass
class GraphNode:
    """One captured kernel launch.

    Attributes:
        uid: dense launch index (program order).
        kernel: registered serving name (``"gemm"``, ...).
        shape: the launch's named shape dimensions.
        build: the exact-shape :class:`KernelBuild` (privileges, arg
            shapes, cost-model inputs; functional execution runs it).
        accesses: one :class:`Access` per entrypoint tensor parameter.
        refs: parameter name -> bound tensor reference.
        label: display name (defaults to ``kernel#uid``).
    """

    uid: int
    kernel: str
    shape: Dict[str, int]
    build: KernelBuild
    accesses: Tuple[Access, ...]
    refs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            self.label = f"{self.kernel}#{self.uid}"

    @property
    def reads(self) -> Dict[str, Access]:
        """Accesses that read, keyed by parameter name."""
        return {a.param: a for a in self.accesses if a.reads}

    @property
    def writes(self) -> Dict[str, Access]:
        """Accesses that write, keyed by parameter name."""
        return {a.param: a for a in self.accesses if a.writes}


def infer_edges(nodes: Sequence[GraphNode]) -> List[GraphEdge]:
    """Infer RAW/WAR/WAW edges between launches from their accesses.

    Walks launches in program order keeping, per root tensor, a
    frontier of live accesses split into writers and pure readers. A
    new read only scans the live writers (read-read pairs are never
    edges, so graphs fanning out over shared read-only tensors —
    weights — stay linear); a new write scans both lists. A write
    whose region covers a frontier entry retires it — later launches
    are ordered through the new writer transitively — which keeps
    producer/consumer chains linear instead of quadratic.

    Args:
        nodes: launches in program order (``uid`` ascending).

    Returns:
        The inferred edges, deduplicated per ``(src, dst, kind,
        tensor)``.
    """
    edges: List[GraphEdge] = []
    seen: set = set()
    writers: Dict[int, List[Tuple[GraphNode, Access]]] = {}
    readers: Dict[int, List[Tuple[GraphNode, Access]]] = {}
    for node in nodes:
        for access in node.accesses:
            live_writes = writers.setdefault(access.root_uid, [])
            live_reads = readers.setdefault(access.root_uid, [])
            against = (
                live_writes + live_reads if access.writes else live_writes
            )
            for earlier_node, earlier in against:
                if earlier_node.uid == node.uid:
                    continue  # a launch does not depend on itself
                kind = earlier.conflicts_with(access)
                if kind is None or not earlier.may_overlap(access):
                    continue
                exact = (
                    earlier.region is not None and access.region is not None
                )
                key = (earlier_node.uid, node.uid, kind, access.tensor)
                if key not in seen:
                    seen.add(key)
                    edges.append(
                        GraphEdge(
                            src=earlier_node.uid,
                            dst=node.uid,
                            kind=kind,
                            tensor=access.tensor,
                            exact=exact,
                        )
                    )
            if access.writes and access.region is not None:
                # Retire frontier entries this write covers: any later
                # conflict with them is ordered through this node.
                def survives(entry) -> bool:
                    earlier_node, earlier = entry
                    return (
                        earlier_node.uid == node.uid
                        or earlier.region is None
                        or not access.region.contains(earlier.region)
                    )

                writers[access.root_uid] = list(
                    filter(survives, live_writes)
                )
                readers[access.root_uid] = list(filter(survives, live_reads))
            target = writers if access.writes else readers
            target[access.root_uid].append((node, access))
    return edges


class TaskGraph:
    """A DAG of kernel launches plus the inferred dependence edges.

    Produced by :meth:`repro.graph.GraphBuilder.build`; consumed by
    :func:`repro.api.compile_graph` / :func:`repro.api.run_graph` and by
    :meth:`repro.runtime.RuntimeServer.submit_graph`. Construction
    validates acyclicity (explicit ``after=`` sequencing could
    otherwise smuggle a cycle in) and rejects edges naming unknown
    nodes; ``validate=False`` skips both checks for edges already
    proven acyclic — a :class:`~repro.graph.template.GraphTemplate`
    replay, whose edges were validated when the template was captured.
    """

    def __init__(
        self,
        nodes: Sequence[GraphNode],
        edges: Iterable[GraphEdge],
        machine: MachineModel,
        tensors: Optional[Mapping[str, Any]] = None,
        validate: bool = True,
    ) -> None:
        self.nodes: Tuple[GraphNode, ...] = tuple(nodes)
        self.edges: Tuple[GraphEdge, ...] = tuple(edges)
        self.machine = machine
        #: name -> GraphTensor for functional execution (may be empty
        #: for hand-constructed graphs, which then cannot carry data).
        self.tensors: Dict[str, Any] = dict(tensors or {})
        #: critical path precomputed by a template replay (or an earlier
        #: default-model call); ``critical_path()`` serves it directly.
        self._cached_critical_path: Optional[Dict[int, float]] = None
        self._by_uid = {node.uid: node for node in self.nodes}
        if validate:
            if len(self._by_uid) != len(self.nodes):
                raise CypressError("task graph has duplicate node uids")
            for edge in self.edges:
                for endpoint in (edge.src, edge.dst):
                    if endpoint not in self._by_uid:
                        raise CypressError(
                            f"edge {edge.src}->{edge.dst} names unknown "
                            f"node {endpoint}"
                        )
        self._successors: Dict[int, List[int]] = {n.uid: [] for n in self.nodes}
        self._predecessors: Dict[int, List[int]] = {
            n.uid: [] for n in self.nodes
        }
        for edge in self.edges:
            if edge.dst not in self._successors[edge.src]:
                self._successors[edge.src].append(edge.dst)
            if edge.src not in self._predecessors[edge.dst]:
                self._predecessors[edge.dst].append(edge.src)
        if validate:
            self.topological_order()  # raises CypressError on a cycle

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def node(self, uid: int) -> GraphNode:
        """The node with the given uid.

        Raises:
            CypressError: unknown uid.
        """
        try:
            return self._by_uid[uid]
        except KeyError:
            raise CypressError(f"unknown graph node {uid}") from None

    def successors(self, uid: int) -> Tuple[int, ...]:
        """Uids this node's edges point to (deduplicated)."""
        return tuple(self._successors[uid])

    def predecessors(self, uid: int) -> Tuple[int, ...]:
        """Uids with an edge into this node (deduplicated)."""
        return tuple(self._predecessors[uid])

    def roots(self) -> Tuple[int, ...]:
        """Nodes with no predecessors, in uid order."""
        return tuple(
            n.uid for n in self.nodes if not self._predecessors[n.uid]
        )

    def sinks(self) -> Tuple[int, ...]:
        """Nodes with no successors, in uid order."""
        return tuple(
            n.uid for n in self.nodes if not self._successors[n.uid]
        )

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def topological_order(
        self, priorities: Optional[Mapping[int, float]] = None
    ) -> List[int]:
        """A deterministic topological order of the node uids.

        Among simultaneously-ready nodes the highest ``priorities``
        value goes first; ties (and the default, no priorities) fall
        back to uid order, so equal-priority schedules are reproducible
        run to run.

        Raises:
            CypressError: the graph contains a dependence cycle (the
                message names the nodes involved).
        """
        import heapq

        indegree = {uid: len(self._predecessors[uid]) for uid in self._by_uid}
        ready = [
            self._sort_key(uid, priorities)
            for uid in sorted(indegree)
            if indegree[uid] == 0
        ]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            _, uid = heapq.heappop(ready)
            order.append(uid)
            for succ in self._successors[uid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, self._sort_key(succ, priorities))
        if len(order) != len(self.nodes):
            stuck = sorted(
                self._by_uid[uid].label
                for uid, degree in indegree.items()
                if degree > 0
            )
            raise CypressError(
                f"task graph contains a dependence cycle through: "
                f"{', '.join(stuck)}"
            )
        return order

    @staticmethod
    def _sort_key(
        uid: int, priorities: Optional[Mapping[int, float]]
    ) -> Tuple[float, int]:
        weight = -priorities[uid] if priorities else 0.0
        return (weight, uid)

    # ------------------------------------------------------------------
    # Critical path
    # ------------------------------------------------------------------
    def node_weights(self, cost_model=None) -> Dict[int, float]:
        """Predicted cycles per node from the analytic cost model.

        Infeasible or opaque estimates (``inf`` or non-positive cycles)
        fall back to weight 1.0 so the critical path stays finite.
        """
        from repro.tuner.costmodel import AnalyticCostModel

        model = cost_model or AnalyticCostModel()
        weights: Dict[int, float] = {}
        for node in self.nodes:
            estimate = model.score(node.build, self.machine)
            cycles = float(estimate.cycles)
            if not (cycles > 0.0) or cycles == float("inf"):
                cycles = 1.0
            weights[node.uid] = cycles
        return weights

    def critical_path(self, cost_model=None) -> Dict[int, float]:
        """Longest path to a sink per node, in predicted cycles.

        The scheduler uses these values as priorities: a node gating a
        long chain of downstream work starts before an equally-ready
        node on a short branch.

        Under the default cost model the result is memoized on the
        graph (and pre-seeded by template replay), so repeated calls —
        and replayed topologies — skip the cost-model walk entirely.
        An explicit ``cost_model`` always recomputes.
        """
        if cost_model is None and self._cached_critical_path is not None:
            return dict(self._cached_critical_path)
        weights = self.node_weights(cost_model)
        path: Dict[int, float] = {}
        for uid in reversed(self.topological_order()):
            downstream = max(
                (path[s] for s in self._successors[uid]), default=0.0
            )
            path[uid] = weights[uid] + downstream
        if cost_model is None:
            self._cached_critical_path = dict(path)
        return path

    def critical_path_length(self, cost_model=None) -> float:
        """Predicted cycles of the longest chain in the graph."""
        path = self.critical_path(cost_model)
        return max(path.values(), default=0.0)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A human-readable listing of nodes and inferred edges."""
        lines = [
            f"task graph: {len(self.nodes)} nodes, {len(self.edges)} edges"
        ]
        for node in self.nodes:
            preds = self._predecessors[node.uid]
            dep = (
                f" <- {{{', '.join(str(p) for p in sorted(preds))}}}"
                if preds
                else ""
            )
            lines.append(f"  [{node.uid}] {node.label}{dep}")
        for edge in self.edges:
            tag = "" if edge.exact else " (conservative)"
            on = f" on {edge.tensor}" if edge.tensor else ""
            lines.append(
                f"  {edge.src} -> {edge.dst}: {edge.kind}{on}{tag}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"TaskGraph(nodes={len(self.nodes)}, edges={len(self.edges)})"
        )
