"""repro.graph — multi-kernel task graphs over the serving runtime.

Real workloads are DAGs of kernel launches over shared tensors — a
transformer block is attention plus four projection/MLP GEMMs — and
hand-ordering those launches serializes branches that are provably
independent. This package lifts the paper's intra-kernel dependence
analysis to whole programs:

* :mod:`~repro.graph.builder` — :class:`GraphBuilder`: declare named
  root tensors, record launches of registered kernels with per-argument
  bindings; privileges come from each kernel's own task declaration.
* :mod:`~repro.graph.taskgraph` — :class:`TaskGraph`: RAW/WAR/WAW
  edges *inferred* by intersecting access regions through the symbolic
  region algebra (conservative fallback when a binding is not
  box-describable), deterministic topological order, cycle detection,
  cost-model critical paths.
* :mod:`~repro.graph.scheduler` — :class:`GraphScheduler`: executes
  ready nodes concurrently on a :class:`~repro.runtime.RuntimeServer`
  (bucketing and micro-batching preserved), longest-critical-path
  first, with optional producer->consumer dataflow.
* :mod:`~repro.graph.template` — :class:`GraphTemplate` /
  :class:`GraphTemplateCache`: a resubmitted topology replays its
  stored edges and critical path from a structural fingerprint with
  zero region-algebra work per launch.

Entry points: :func:`repro.api.compile_graph` /
:func:`repro.api.run_graph` for one-shot use,
:meth:`repro.runtime.RuntimeServer.submit_graph` for serving. See
``docs/graphs.md`` for the walkthrough.
"""

from repro.graph.builder import GraphBuilder, GraphTensor
from repro.graph.scheduler import (
    GraphExecution,
    GraphResult,
    GraphScheduler,
    materialize_root_arrays,
)
from repro.graph.taskgraph import (
    RAW,
    SEQ,
    WAR,
    WAW,
    Access,
    GraphEdge,
    GraphNode,
    TaskGraph,
    infer_edges,
)
from repro.graph.template import (
    GraphTemplate,
    GraphTemplateCache,
    TemplateCacheStats,
    template_cache,
)

__all__ = [
    "Access",
    "GraphBuilder",
    "GraphEdge",
    "GraphExecution",
    "GraphNode",
    "GraphResult",
    "GraphScheduler",
    "GraphTemplate",
    "GraphTemplateCache",
    "GraphTensor",
    "RAW",
    "SEQ",
    "TaskGraph",
    "TemplateCacheStats",
    "WAR",
    "WAW",
    "infer_edges",
    "materialize_root_arrays",
    "template_cache",
]
