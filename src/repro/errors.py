"""Exception hierarchy for the Cypress reproduction.

Every user-facing failure raised by the frontend, the compiler, or the
simulator derives from :class:`CypressError`, so callers can catch one type
to handle any model-level problem while letting genuine bugs (``TypeError``
and friends) propagate.
"""

from __future__ import annotations


class CypressError(Exception):
    """Base class for all errors raised by this package."""


class MachineError(CypressError):
    """An inconsistent machine description (bad hierarchy or visibility)."""


class TensorError(CypressError):
    """Illegal tensor construction, indexing, or dtype use."""


class LayoutError(TensorError):
    """Illegal layout algebra operation (shape/stride mismatch)."""


class PartitionError(TensorError):
    """Illegal partitioning request (bad block shape, bad index)."""


class PrivilegeError(CypressError):
    """A task violated its declared privileges (see paper section 3.2)."""


class TraceError(CypressError):
    """The frontend tracer observed an illegal program construct."""


class TunableError(TraceError):
    """A tunable was requested but not bound by the mapping specification."""


class MappingError(CypressError):
    """An inconsistent mapping specification (see paper section 3.3)."""


class IRError(CypressError):
    """Malformed IR: SSA violations, dangling events, bad block structure."""


class VerificationError(IRError):
    """The IR verifier rejected a module."""


class CompileError(CypressError):
    """A compiler pass could not lower the program."""


class AllocationError(CompileError):
    """Shared-memory allocation failed.

    Raised when even the original (fully relaxed) interference graph does
    not fit the per-block shared-memory bound, mirroring the out-of-memory
    report described in paper section 4.2.4.
    """


class TransientError(CypressError):
    """A failure worth retrying: the operation may succeed if repeated.

    The resilience layer (:mod:`repro.runtime.resilience`) treats
    ``TransientError`` (and ``OSError``) as retryable with seeded
    exponential backoff; every other exception is considered
    deterministic and fails fast. Injected faults
    (:class:`repro.runtime.faults.InjectedFault`) derive from this
    class so the chaos harness exercises exactly the retry paths real
    transient failures would take.
    """


class SimulationError(CypressError):
    """The GPU simulator was given an inconsistent schedule."""


class FunctionalError(CypressError):
    """The functional (numpy) executor hit an inconsistency."""
