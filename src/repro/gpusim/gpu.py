"""Whole-GPU performance model.

Combines the detailed single-CTA simulation with grid-level effects:

* **occupancy** — CTAs per SM limited by shared memory, registers, and
  thread count;
* **waves** — the grid executes in ``ceil(grid / (SMs * occupancy))``
  waves, which produces the wave-quantization and launch-overhead
  penalties visible at small problem sizes (the paper's Figure 14 gap at
  short sequence lengths, absent a persistent-kernel optimization);
* **multi-CTA contention** — CTAs co-resident on an SM share its TMA,
  Tensor Core, SIMT, and shared-memory bandwidth: a wave takes at least
  ``occupancy x`` each resource's busy time;
* **bandwidth roofs** — total global traffic is bounded by L2 bandwidth,
  and compulsory (unique) traffic by HBM bandwidth;
* **power throttling** — sustained Tensor Core utilization above the
  knee linearly reduces the clock toward the floor fraction, the effect
  the paper normalizes for by fixing input distributions (section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.gpusim.executor import CtaResult, simulate_cta
from repro.gpusim.kernel import KernelSchedule
from repro.gpusim.roofline import effective_waves as _effective_waves
from repro.gpusim.roofline import roofline, throttle_scale
from repro.machine.machine import MachineModel


@dataclass
class GpuResult:
    """Timing and throughput of a full kernel launch."""

    name: str
    cycles: float
    seconds: float
    tflops: float
    grid: int
    waves: int
    ctas_per_sm: int
    cta_cycles: float
    clock_scale: float
    utilization: Dict[str, float]
    dram_gb: float

    def summary(self) -> str:
        """One-line human-readable timing summary for reports."""
        return (
            f"{self.name}: {self.tflops:7.1f} TFLOP/s  "
            f"({self.seconds * 1e3:.3f} ms, grid={self.grid}, "
            f"waves={self.waves}, occ={self.ctas_per_sm}/SM, "
            f"clock x{self.clock_scale:.3f})"
        )


def occupancy(schedule: KernelSchedule, machine: MachineModel) -> int:
    """CTAs resident per SM under shared-memory/register/thread limits."""
    roof = roofline(machine, strict=False)
    limit = roof.max_ctas_per_sm
    if schedule.smem_bytes_per_cta > 0:
        limit = min(
            limit, roof.smem_capacity_bytes // schedule.smem_bytes_per_cta
        )
    threads = schedule.threads_per_cta
    if threads > 0:
        limit = min(limit, roof.max_threads_per_sm // threads)
    regs = schedule.regs_per_thread * threads
    if regs > 0:
        limit = min(limit, roof.registers_per_sm // regs)
    return max(1, limit)


def simulate_kernel(
    schedule: KernelSchedule, machine: MachineModel
) -> GpuResult:
    """Simulate a kernel launch; returns timing and TFLOP/s."""
    cta = simulate_cta(schedule, machine)
    # Every machine rate comes from the shared (strict) roofline
    # derivation — the same numbers the analytic cost model consumes.
    roof = roofline(machine)
    sm_count = roof.sm_count
    clock_hz = roof.clock_hz

    ctas_per_sm = occupancy(schedule, machine)
    concurrent = sm_count * ctas_per_sm
    waves = max(1, math.ceil(schedule.grid / concurrent))

    # A wave is limited by the critical path of one CTA and by each SM
    # resource serving all co-resident CTAs.
    wave_cycles = cta.cycles
    for resource, busy in cta.busy.items():
        wave_cycles = max(wave_cycles, busy * ctas_per_sm)

    # Partial last wave: scale by its fill fraction for a smoother (and
    # more realistic, thanks to tail effects) estimate. Persistent
    # kernels (one CTA per SM consuming logical blocks off a queue)
    # avoid both the tail quantization and the per-CTA start cost.
    persistent = bool(schedule.metadata.get("persistent"))
    if persistent:
        effective_waves = max(schedule.grid / concurrent, 1.0)
        start_cycles = 0.0
    else:
        effective_waves = _effective_waves(schedule.grid, int(concurrent))
        start_cycles = roof.cta_start_cycles

    compute_cycles = effective_waves * wave_cycles + start_cycles

    # Bandwidth roofs over the whole launch.
    total_loaded = schedule.bytes_loaded_per_cta() * schedule.grid
    total_stored = schedule.bytes_stored_per_cta() * schedule.grid
    hbm_bytes_per_cycle = roof.hbm_bytes_per_cycle
    l2_bytes_per_cycle = roof.l2_bytes_per_cycle
    unique = schedule.unique_dram_bytes + total_stored
    hbm_floor = unique / hbm_bytes_per_cycle
    l2_floor = (total_loaded + total_stored) / l2_bytes_per_cycle
    cycles = max(compute_cycles, hbm_floor, l2_floor)

    # Deterministic throttle model (shared with the cost model).
    clock_scale = throttle_scale(roof, schedule.total_flops, cycles)
    cycles = cycles / clock_scale

    seconds = cycles / clock_hz + roof.kernel_launch_us * 1e-6
    tflops = schedule.total_flops / seconds / 1e12 if seconds > 0 else 0.0

    utilization = {
        name: (busy * ctas_per_sm * effective_waves) / max(cycles, 1.0)
        for name, busy in cta.busy.items()
    }
    return GpuResult(
        name=schedule.name,
        cycles=cycles,
        seconds=seconds,
        tflops=tflops,
        grid=schedule.grid,
        waves=waves,
        ctas_per_sm=ctas_per_sm,
        cta_cycles=cta.cycles,
        clock_scale=clock_scale,
        utilization=utilization,
        dram_gb=(total_loaded + total_stored) / 1e9,
    )
