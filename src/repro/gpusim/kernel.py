"""Executable kernel schedules.

A :class:`KernelSchedule` is what the compiler's simulator backend
produces: a per-CTA program of :class:`Segment` s (straight-line spans or
loops), each holding :class:`Instr` uctions annotated with the resource
kind, data volume, warp role, and the dependence edges of the event
graph. Baseline systems (cuBLAS, Triton, ...) are modeled as alternative
generators of the same structure, so every system is timed by the same
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError

#: Instruction kinds understood by the executor, with the resource that
#: services them.
INSTR_KINDS = (
    "tma_load",   # TMA engine: global -> shared
    "tma_store",  # TMA engine: shared -> global
    "cp_async",   # SIMT-issued async copy (Ampere path / Triton default)
    "ld_global",  # blocking global load by threads
    "st_global",  # blocking global store by threads
    "wgmma",      # Tensor Core matrix multiply
    "mma_sync",   # Ampere-style warp-level tensor op
    "simt",       # general SIMT arithmetic
    "sfu",        # special function unit (exp, rsqrt)
    "smem_copy",  # register <-> shared staging traffic
    "nop",        # zero-cost logical operation
)


@dataclass
class Instr:
    """One instruction of a CTA schedule.

    Attributes:
        uid: identifier, unique within the schedule (IR op uid).
        kind: one of :data:`INSTR_KINDS`.
        role: ``"dma"`` or ``"compute"``.
        bytes_moved: payload for copy-like kinds.
        flops: arithmetic volume for mma/simt kinds.
        sfu_ops: special-function operation count.
        deps: uids this instruction waits on, same iteration.
        carried_deps: (uid, distance) pairs — wait on that uid's
            completion ``distance`` iterations ago (software-pipelining
            backward edges; ignored when iteration < distance).
        war_distance/war_consumers: iteration-k instance waits until the
            consumers finished iteration ``k - war_distance`` (buffer
            reuse in a multi-buffered pipeline).
        issue_cycles: cycles the issuing warp is occupied.
        label: human-readable tag for reports.
    """

    uid: int
    kind: str
    role: str = "compute"
    bytes_moved: int = 0
    flops: float = 0.0
    sfu_ops: float = 0.0
    deps: List[int] = field(default_factory=list)
    carried_deps: List[Tuple[int, int]] = field(default_factory=list)
    war_distance: int = 0
    war_consumers: List[int] = field(default_factory=list)
    issue_cycles: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in INSTR_KINDS:
            raise SimulationError(f"unknown instruction kind {self.kind!r}")


@dataclass
class Segment:
    """A straight-line span (extent == 1) or a loop of instructions."""

    instrs: List[Instr]
    extent: int = 1
    pipeline: int = 1

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise SimulationError("segment extent must be >= 1")
        if self.pipeline < 1:
            raise SimulationError("pipeline depth must be >= 1")

    @property
    def is_loop(self) -> bool:
        return self.extent > 1


@dataclass
class KernelSchedule:
    """A complete per-CTA schedule plus grid-level metadata."""

    name: str
    segments: List[Segment]
    grid: int
    n_warpgroups: int
    warpspecialized: bool
    smem_bytes_per_cta: int
    regs_per_thread: int
    total_flops: float
    unique_dram_bytes: float
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.grid < 1:
            raise SimulationError("grid must contain at least one CTA")
        if self.n_warpgroups < 1:
            raise SimulationError("need at least one compute warpgroup")
        seen = set()
        for segment in self.segments:
            for instr in segment.instrs:
                if instr.uid in seen:
                    raise SimulationError(
                        f"duplicate instruction uid {instr.uid}"
                    )
                seen.add(instr.uid)

    @property
    def threads_per_cta(self) -> int:
        compute = 128 * self.n_warpgroups
        dma = 128 if self.warpspecialized else 0
        return compute + dma

    def instruction_count(self) -> int:
        return sum(len(s.instrs) for s in self.segments)

    def dynamic_instruction_count(self) -> int:
        return sum(len(s.instrs) * s.extent for s in self.segments)

    def bytes_loaded_per_cta(self) -> float:
        """Global-memory bytes one CTA pulls in (all iterations)."""
        total = 0.0
        for segment in self.segments:
            for instr in segment.instrs:
                if instr.kind in ("tma_load", "cp_async", "ld_global"):
                    total += instr.bytes_moved * segment.extent
        return total

    def bytes_stored_per_cta(self) -> float:
        total = 0.0
        for segment in self.segments:
            for instr in segment.instrs:
                if instr.kind in ("tma_store", "st_global"):
                    total += instr.bytes_moved * segment.extent
        return total
