"""Discrete-event Hopper GPU simulator.

This package substitutes for the H100 hardware the paper evaluates on.
The compiler lowers programs into a :class:`KernelSchedule` — per-CTA
instruction streams for the DMA warp and each compute warpgroup, linked
by the event dependence graph — and the executor simulates one CTA's
streams against H100-calibrated resource servers (TMA engine, Tensor
Core, SIMT pipelines, shared-memory bandwidth). The whole-GPU model adds
grid scheduling: occupancy, waves, launch overhead, DRAM/L2 bandwidth
roofs, and a deterministic power-throttle model.
"""

from repro.gpusim.kernel import Instr, KernelSchedule, Segment
from repro.gpusim.engine import ResourcePool
from repro.gpusim.executor import CtaResult, simulate_cta
from repro.gpusim.gpu import GpuResult, simulate_kernel
from repro.gpusim.barriers import MBarrier
from repro.gpusim.functional import interpret_function
from repro.gpusim.roofline import Roofline, roofline

__all__ = [
    "Instr",
    "Segment",
    "KernelSchedule",
    "ResourcePool",
    "simulate_cta",
    "CtaResult",
    "simulate_kernel",
    "GpuResult",
    "MBarrier",
    "interpret_function",
    "Roofline",
    "roofline",
]
