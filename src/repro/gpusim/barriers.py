"""Shared-memory barrier (mbarrier) semantics.

Hopper synchronizes warp-specialized producers and consumers with
shared-memory barriers: a barrier is initialized with an expected
arrival count; threads (or the TMA, on transaction completion) *arrive*,
and waiters block until the expected count is reached, at which point
the barrier flips phase and re-arms. The paper's code generator lowers
cross-warp events onto these barriers (section 4.2.6, including the
footnote on why named barriers are insufficient with TMA multicast).

The discrete-event executor enforces dependences directly from the
event graph, so this class exists to model and test the mechanism the
generated CUDA code would use — the CUDA backend emits it — and to
document its phase semantics.
"""

from __future__ import annotations

from repro.errors import SimulationError


class MBarrier:
    """An mbarrier with phase-based arrive/wait semantics."""

    def __init__(self, expected_arrivals: int):
        if expected_arrivals < 1:
            raise SimulationError(
                "mbarrier needs a positive expected arrival count"
            )
        self.expected = expected_arrivals
        self.pending = expected_arrivals
        self.phase = 0
        self.total_arrivals = 0

    def arrive(self, count: int = 1) -> int:
        """Record ``count`` arrivals; returns the phase arrived on."""
        if count < 1:
            raise SimulationError("arrival count must be positive")
        if count > self.pending:
            raise SimulationError(
                f"barrier over-arrival: {count} arrivals with only "
                f"{self.pending} pending"
            )
        arrived_phase = self.phase
        self.pending -= count
        self.total_arrivals += count
        if self.pending == 0:
            self.phase += 1
            self.pending = self.expected
        return arrived_phase

    def try_wait(self, phase: int) -> bool:
        """Would a wait on ``phase`` succeed right now?

        A wait on phase ``p`` succeeds once the barrier has moved past
        phase ``p`` (i.e., all expected arrivals for that phase landed).
        """
        return self.phase > phase

    def expect_tx(self, bytes_expected: int) -> "TxBarrier":
        """Hopper's transaction-count extension used by the TMA."""
        return TxBarrier(self, bytes_expected)


class TxBarrier:
    """Transaction-counting view: the TMA arrives by delivered bytes."""

    def __init__(self, barrier: MBarrier, bytes_expected: int):
        if bytes_expected < 1:
            raise SimulationError("expected transaction bytes must be > 0")
        self.barrier = barrier
        self.bytes_expected = bytes_expected
        self.bytes_seen = 0
        self._done = False

    def deliver(self, nbytes: int) -> bool:
        """Account delivered bytes; arrives on the barrier when full."""
        if self._done:
            raise SimulationError("transaction barrier already completed")
        if nbytes < 1:
            raise SimulationError("delivered bytes must be positive")
        self.bytes_seen += nbytes
        if self.bytes_seen > self.bytes_expected:
            raise SimulationError(
                f"TMA delivered {self.bytes_seen} bytes, more than the "
                f"expected {self.bytes_expected}"
            )
        if self.bytes_seen == self.bytes_expected:
            self._done = True
            self.barrier.arrive()
            return True
        return False
