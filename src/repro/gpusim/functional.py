"""Functional (numpy) execution of IR functions.

Executes an :class:`IRFunction` with real data, honoring the sequential
semantics the compiler must preserve: operations run in program order,
sequential loops iterate, parallel loops iterate sequentially (the
semantics of ``prange`` are *as if* it were ``srange``), and flattened
processor dimensions (references containing ``warp_id()`` etc.) are
enumerated exhaustively. Works on the IR at any stage before buffers are
physically aliased (i.e., up to and including copy elimination), which
is what the end-to-end correctness tests exercise.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import FunctionalError
from repro.frontend.task import TaskRegistry
from repro.ir.module import IRFunction
from repro.ir.ops import AllocOp, Block, CallOp, CopyOp, ForOp, PForOp
from repro.machine.processor import ProcessorKind
from repro.tensors.mma_partition import MmaPartition
from repro.tensors.tensor import TensorRef

_DEFAULT_EXTENTS = {"warp": 4, "thread": 32, "warpgroup": 1, "block": 1}


def interpret_function(
    fn: IRFunction,
    registry: TaskRegistry,
    inputs: Mapping[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Execute ``fn`` on numpy inputs; returns arrays per parameter."""
    interp = _Interpreter(fn, registry)
    return interp.run(inputs)


class _Interpreter:
    def __init__(self, fn: IRFunction, registry: TaskRegistry):
        self.fn = fn
        self.registry = registry
        self.storage: Dict[Tuple, np.ndarray] = {}
        extents = dict(_DEFAULT_EXTENTS)
        extents.update(fn.metadata.get("proc_extents", {}))
        self.proc_extents = extents

    # ------------------------------------------------------------------
    def run(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        for param in self.fn.params:
            if param.name not in inputs:
                raise FunctionalError(
                    f"missing input for parameter {param.name!r}"
                )
            array = np.array(
                inputs[param.name], dtype=param.dtype.to_numpy()
            )
            if tuple(array.shape) != param.shape:
                raise FunctionalError(
                    f"input {param.name!r} has shape {array.shape}, "
                    f"expected {param.shape}"
                )
            self.storage[(param.tensor.uid,)] = array
        self._run_block(self.fn.body, {})
        return {
            p.name: self.storage[(p.tensor.uid,)] for p in self.fn.params
        }

    def _array_for(
        self, ref: TensorRef, bound: Optional[Mapping[str, int]] = None
    ) -> np.ndarray:
        uid = ref.root.uid
        buffer = self.fn.buffers.get(uid)
        if buffer is None:
            raise FunctionalError(f"reference {ref!r} has no declared buffer")
        # Buffers private to flattened processor levels (per-thread
        # register fragments) get one array per processor instance.
        private = sorted(getattr(buffer, "private_levels", ()))
        key: Tuple = (uid,)
        if private and bound is not None:
            key = (uid,) + tuple(bound.get(level, 0) for level in private)
        if key not in self.storage:
            self.storage[key] = np.zeros(
                buffer.shape, dtype=buffer.dtype.to_numpy()
            )
        return self.storage[key]

    # ------------------------------------------------------------------
    def _run_block(self, block: Block, env: Dict[str, int]) -> None:
        for op in block.ops:
            if isinstance(op, AllocOp):
                continue
            if isinstance(op, (ForOp, PForOp)):
                for k in range(op.extent):
                    inner = dict(env)
                    inner[op.index.name] = k
                    self._run_block(op.body, inner)
                continue
            if isinstance(op, CopyOp):
                self._run_copy(op, env)
                continue
            if isinstance(op, CallOp):
                self._run_call(op, env)
                continue
            raise FunctionalError(f"cannot interpret op {op!r}")

    # ------------------------------------------------------------------
    def _proc_envs(self, refs: List[TensorRef], env: Dict[str, int]):
        """Environments covering the flattened processor indices."""
        levels: List[str] = []
        for ref in refs:
            for name in ref.free_variables():
                if name in ("warpgroup", "warp", "thread", "block"):
                    if name not in env and name not in levels:
                        levels.append(name)
        if not levels:
            yield env
            return
        extents = [self.proc_extents.get(level, 1) for level in levels]
        for combo in itertools.product(*(range(e) for e in extents)):
            inner = dict(env)
            inner.update(zip(levels, combo))
            yield inner

    def _run_copy(self, op: CopyOp, env: Dict[str, int]) -> None:
        for bound in self._proc_envs([op.src, op.dst], env):
            src_arr = self._array_for(op.src, bound)
            dst_arr = self._array_for(op.dst, bound)
            value = op.src.read(src_arr, bound)
            op.dst.write(
                dst_arr, value.astype(dst_arr.dtype, copy=False), bound
            )

    def _run_call(self, op: CallOp, env: Dict[str, int]) -> None:
        external = self.registry.external(op.function)
        refs = [a for a in op.args if isinstance(a, TensorRef)]
        for bound in self._proc_envs(refs, env):
            if external.collective:
                if not self._leads_collective(op, bound):
                    continue
                args = [
                    self._strip_mma(a) if isinstance(a, TensorRef) else a
                    for a in op.args
                ]
            else:
                args = list(op.args)
            arrays: List[Optional[np.ndarray]] = []
            call_args: List[Any] = []
            for arg in args:
                if isinstance(arg, TensorRef):
                    array = arg.read(self._array_for(arg, bound), bound)
                    arrays.append(array)
                    call_args.append(array)
                else:
                    arrays.append(None)
                    call_args.append(arg)
            external.numpy_impl(*call_args)
            write_uids = {w.root.uid for w in op.writes}
            for arg, array in zip(args, arrays):
                if isinstance(arg, TensorRef) and array is not None:
                    if arg.root.uid in write_uids:
                        target = self._array_for(arg, bound)
                        arg.write(
                            target,
                            array.astype(target.dtype, copy=False),
                            bound,
                        )

    # ------------------------------------------------------------------
    # Collective (wgmma-style) calls
    # ------------------------------------------------------------------
    def _collective_levels(self, op: CallOp) -> set:
        levels = set()
        for ref in op.tensor_uses():
            for partition, _ in ref.path:
                if isinstance(partition, MmaPartition):
                    levels.add(partition.proc.value)
        return levels

    def _leads_collective(self, op: CallOp, bound: Dict[str, int]) -> bool:
        """Only the index-0 member of each collective level executes."""
        for level in self._collective_levels(op):
            if bound.get(level, 0) != 0:
                return False
        return True

    def _strip_mma(self, ref: TensorRef) -> TensorRef:
        path = list(ref.path)
        while path and isinstance(path[-1][0], MmaPartition):
            path.pop()
        return TensorRef(ref.root, tuple(path))
