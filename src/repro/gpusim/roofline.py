"""Per-resource roofline numbers derived from a :class:`MachineModel`.

The discrete-event simulator (:mod:`repro.gpusim.engine`), the
whole-GPU wave model (:mod:`repro.gpusim.gpu`), and the analytic cost
model (:mod:`repro.tuner.costmodel`) all need the same derived
quantities: per-SM service rates for each resource, whole-device
bandwidth in bytes per cycle, latency and issue costs, and occupancy
limits. :func:`roofline` computes them once from ``machine.specs`` so
the predictor and the simulator can never disagree about what the
hardware is capable of — only about how a particular schedule uses it.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.machine.machine import MachineModel
from repro.machine.memory import MemoryKind


@dataclass(frozen=True)
class Roofline:
    """Derived machine rates, latencies, and limits (all per boost clock).

    Attributes:
        sm_count: streaming multiprocessors on the device.
        clock_hz: boost clock in Hz.
        tensor_flops_per_cycle: Tensor Core FLOPs per cycle per SM.
        simt_flops_per_cycle: SIMT FLOPs per cycle per SM.
        sfu_ops_per_cycle: special-function ops per cycle per SM.
        smem_bytes_per_cycle: shared-memory bandwidth per SM.
        global_bytes_per_cycle: per-SM global-copy service rate. Tile
            loads mostly hit in L2 thanks to inter-CTA reuse, so this
            rides the L2 bandwidth split across SMs; compulsory DRAM
            traffic is bounded separately by ``hbm_bytes_per_cycle``.
        global_latency_cycles: blocking global-access latency.
        tma_issue_cycles / tma_latency_cycles: TMA issue cost and
            completion latency (meaningful when ``has_tma``).
        cp_async_issue_cycles_per_16b / cp_async_latency_cycles: the
            Ampere-style async-copy costs used when the TMA is absent.
        has_tma: whether the machine exposes a TMA engine.
        hbm_bytes_per_cycle: whole-device HBM bandwidth.
        l2_bytes_per_cycle: whole-device L2 bandwidth.
        smem_capacity_bytes: shared memory per SM.
        registers_per_sm / max_threads_per_sm / max_ctas_per_sm:
            occupancy limits.
        cta_start_cycles: fixed per-launch CTA start cost.
        kernel_launch_us: host-side launch overhead in microseconds.
        throttle_knee / throttle_floor: the deterministic power model —
            sustained tensor utilization above the knee scales the
            clock linearly toward the floor fraction.
        tensor_peak_tflops: device dense FP16 Tensor Core peak.
    """

    sm_count: float
    clock_hz: float
    tensor_flops_per_cycle: float
    simt_flops_per_cycle: float
    sfu_ops_per_cycle: float
    smem_bytes_per_cycle: float
    global_bytes_per_cycle: float
    global_latency_cycles: float
    tma_issue_cycles: float
    tma_latency_cycles: float
    cp_async_issue_cycles_per_16b: float
    cp_async_latency_cycles: float
    has_tma: bool
    hbm_bytes_per_cycle: float
    l2_bytes_per_cycle: float
    smem_capacity_bytes: int
    registers_per_sm: int
    max_threads_per_sm: int
    max_ctas_per_sm: int
    cta_start_cycles: float
    kernel_launch_us: float
    throttle_knee: float
    throttle_floor: float
    tensor_peak_tflops: float

    def copy_latency_cycles(self) -> float:
        """Completion latency of the machine's bulk-copy mechanism."""
        return (
            self.tma_latency_cycles
            if self.has_tma
            else self.cp_async_latency_cycles
        )

    def copy_issue_cycles(self, bytes_moved: float) -> float:
        """Cycles the issuing warp spends launching one bulk copy."""
        if self.has_tma:
            return self.tma_issue_cycles
        return (
            max(1.0, bytes_moved / 16.0)
            * self.cp_async_issue_cycles_per_16b
            / 32.0
        )


def effective_waves(grid: int, concurrent: int) -> float:
    """Non-persistent effective wave count with the partial-tail model.

    The partial last wave is scaled by its fill fraction, floored at
    0.35 (tail effects), and the whole launch takes at least one wave.
    Shared by the simulator's grid model and the analytic cost model so
    the tail arithmetic can never drift apart.

    Args:
        grid: CTAs launched.
        concurrent: CTAs resident device-wide (SMs x occupancy).

    Returns:
        The effective wave multiplier (>= 1.0).
    """
    full = grid // concurrent
    tail = grid - full * concurrent
    waves = full + (0.0 if tail == 0 else max(0.35, tail / concurrent))
    return max(waves, 1.0)


def throttle_scale(
    roof: Roofline, total_flops: float, cycles: float
) -> float:
    """The deterministic power-throttle clock scale for one launch.

    Sustained Tensor Core utilization above the roofline's knee scales
    the clock linearly toward the floor fraction. Shared by the
    simulator and the analytic cost model.

    Args:
        roof: the machine's derived roofline.
        total_flops: useful arithmetic of the launch.
        cycles: pre-throttle predicted/simulated cycles.

    Returns:
        The clock scale in (0, 1]; divide cycles by it.
    """
    tensor_util = min(
        1.0,
        (total_flops / roof.tensor_peak_tflops / 1e12)
        * roof.clock_hz
        / max(cycles, 1.0),
    )
    if tensor_util > roof.throttle_knee and roof.throttle_knee < 1.0:
        over = (tensor_util - roof.throttle_knee) / (
            1.0 - roof.throttle_knee
        )
        return 1.0 - (1.0 - roof.throttle_floor) * min(1.0, over)
    return 1.0


#: Derived rooflines per live machine object. Machines are frozen
#: dataclasses (treated as immutable), but their dict fields make them
#: unhashable, so the cache is keyed by id() with a weak reference
#: guarding against id reuse after collection.
_CACHE: Dict[int, Tuple["weakref.ref", Dict[bool, Roofline]]] = {}


def roofline(machine: MachineModel, *, strict: bool = True) -> Roofline:
    """The :class:`Roofline` of ``machine`` (cached per machine object).

    Args:
        machine: the machine model to derive rates from. Must define
            SHARED/GLOBAL memories; missing specs fall back to the
            simulator's historical defaults.
        strict: with the default ``True``, missing ``sm_count``,
            ``clock_ghz``, ``tensor_fp16_tflops``, or
            ``hbm_bandwidth_tb_s`` specs raise — fabricated rates
            would make every whole-kernel simulation and cost
            prediction silently wrong. ``strict=False`` keeps the
            CTA-level engine's historical tolerance (defaults) for
            machines that never touch those roofs.

    Returns:
        A frozen :class:`Roofline` with every derived quantity the
        simulator and the analytic cost model consume.

    Raises:
        MachineError: ``strict=True`` and an essential spec is missing.
    """
    entry = _CACHE.get(id(machine))
    if entry is not None and entry[0]() is machine:
        roofs = entry[1]
    else:
        roofs = {}
        key = id(machine)
        ref = weakref.ref(machine, lambda _r, _k=key: _CACHE.pop(_k, None))
        _CACHE[key] = (ref, roofs)
    cached = roofs.get(strict)
    if cached is None:
        cached = roofs[strict] = _derive(machine, strict)
    return cached


def _derive(machine: MachineModel, strict: bool) -> Roofline:
    specs = machine.specs
    if strict:
        # Whole-kernel simulation and cost prediction are meaningless
        # without these; fail loudly (machine.spec names the known
        # specs) rather than fabricate a roof.
        for key in (
            "sm_count",
            "clock_ghz",
            "tensor_fp16_tflops",
            "hbm_bandwidth_tb_s",
        ):
            machine.spec(key)
    sm_count = specs.get("sm_count", 1.0)
    ghz = specs.get("clock_ghz", 1.0)
    clock_hz = ghz * 1e9
    hbm_tb_s = specs.get("hbm_bandwidth_tb_s", 1.0)
    l2_tb_s = specs.get("l2_bandwidth_tb_s", hbm_tb_s * 3)
    return Roofline(
        sm_count=sm_count,
        clock_hz=clock_hz,
        tensor_flops_per_cycle=specs.get(
            "tensor_flops_per_cycle_per_sm", 1000.0
        ),
        simt_flops_per_cycle=specs.get("simt_flops_per_cycle_per_sm", 128.0),
        sfu_ops_per_cycle=specs.get("sfu_ops_per_cycle_per_sm", 16.0),
        smem_bytes_per_cycle=machine.memory(
            MemoryKind.SHARED
        ).bandwidth_bytes_per_cycle,
        global_bytes_per_cycle=l2_tb_s * 1e12 / (sm_count * clock_hz),
        global_latency_cycles=machine.memory(
            MemoryKind.GLOBAL
        ).latency_cycles,
        tma_issue_cycles=specs.get("tma_issue_cycles", 40.0),
        tma_latency_cycles=specs.get("tma_latency_cycles", 700.0),
        cp_async_issue_cycles_per_16b=specs.get(
            "cp_async_issue_cycles_per_16b", 1.0
        ),
        cp_async_latency_cycles=specs.get("cp_async_latency_cycles", 600.0),
        has_tma="tma_issue_cycles" in specs,
        hbm_bytes_per_cycle=hbm_tb_s * 1e12 / clock_hz,
        l2_bytes_per_cycle=l2_tb_s * 1e12 / clock_hz,
        smem_capacity_bytes=machine.memory(
            MemoryKind.SHARED
        ).capacity_bytes,
        registers_per_sm=int(specs.get("registers_per_sm", 65536)),
        max_threads_per_sm=int(specs.get("max_threads_per_sm", 2048)),
        max_ctas_per_sm=int(specs.get("max_ctas_per_sm", 32)),
        cta_start_cycles=specs.get("cta_start_cycles", 0.0),
        kernel_launch_us=specs.get("kernel_launch_us", 0.0),
        throttle_knee=specs.get("throttle_knee_utilization", 1.0),
        throttle_floor=specs.get("throttle_floor_fraction", 1.0),
        tensor_peak_tflops=specs.get("tensor_fp16_tflops", 1.0),
    )
