"""Resource servers for the CTA-level discrete-event simulation.

Each SM resource (TMA engine, Tensor Core pipeline, SIMT lanes, SFU,
shared-memory bandwidth) is modeled as a serial server with a service
time per request. Requests reserve the server no earlier than their
ready time; the server processes them in reservation order. Busy time is
tracked per resource so the whole-GPU model can apply multi-CTA
contention and roofline corrections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError
from repro.machine.machine import MachineModel
from repro.machine.memory import MemoryKind


@dataclass
class Resource:
    """A serial server with FIFO reservations."""

    name: str
    next_free: float = 0.0
    busy: float = 0.0

    def reserve(self, ready: float, service: float) -> float:
        """Reserve the resource at or after ``ready``; returns finish."""
        if service < 0:
            raise SimulationError(
                f"negative service time on {self.name}: {service}"
            )
        start = max(ready, self.next_free)
        finish = start + service
        self.next_free = finish
        self.busy += service
        return finish


class ResourcePool:
    """The per-SM resources one CTA contends for, plus service models."""

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.resources: Dict[str, Resource] = {
            name: Resource(name)
            for name in ("tma", "tensor", "simt", "sfu", "smem", "lsu")
        }
        specs = machine.specs
        self._tensor_flops_per_cycle = specs.get(
            "tensor_flops_per_cycle_per_sm", 1000.0
        )
        self._simt_flops_per_cycle = specs.get(
            "simt_flops_per_cycle_per_sm", 128.0
        )
        self._sfu_ops_per_cycle = specs.get("sfu_ops_per_cycle_per_sm", 16.0)
        self._smem_bytes_per_cycle = machine.memory(
            MemoryKind.SHARED
        ).bandwidth_bytes_per_cycle
        # Per-SM copy throughput rides the L2: tile loads mostly hit in
        # L2 thanks to inter-CTA reuse (row/column panels shared across
        # a wave). Compulsory DRAM traffic is bounded separately by the
        # whole-device HBM roofline in the GPU model.
        sm_count = specs.get("sm_count", 1.0)
        ghz = specs.get("clock_ghz", 1.0)
        l2_tb_s = specs.get(
            "l2_bandwidth_tb_s", specs.get("hbm_bandwidth_tb_s", 1.0) * 3
        )
        self._global_bytes_per_cycle = (
            l2_tb_s * 1e12 / (sm_count * ghz * 1e9)
        )
        self._global_latency = machine.memory(
            MemoryKind.GLOBAL
        ).latency_cycles
        self._tma_latency = specs.get("tma_latency_cycles", 700.0)
        self._tma_issue = specs.get("tma_issue_cycles", 40.0)
        self._cp_async_latency = specs.get("cp_async_latency_cycles", 600.0)
        self._cp_async_issue_per_16b = specs.get(
            "cp_async_issue_cycles_per_16b", 1.0
        )
        self.has_tma = "tma_issue_cycles" in specs

    # ------------------------------------------------------------------
    # Service/issue models per instruction kind
    # ------------------------------------------------------------------
    def issue_cycles(self, kind: str, bytes_moved: int) -> float:
        """Cycles the issuing warp is occupied by this instruction."""
        if kind in ("tma_load", "tma_store"):
            return self._tma_issue
        if kind == "cp_async":
            # cp.async occupies the issuing threads per 16B transaction —
            # the cost Triton pays for not using the TMA.
            return (
                max(1, bytes_moved // 16) * self._cp_async_issue_per_16b / 32.0
            )
        if kind in ("wgmma", "mma_sync"):
            return 8.0
        if kind == "nop":
            return 0.0
        return 4.0

    def completion(self, kind: str, ready: float, instr) -> float:
        """Reserve the servicing resource; return the completion time."""
        if kind in ("tma_load", "tma_store"):
            service = instr.bytes_moved / self._global_bytes_per_cycle
            finish = self.resources["tma"].reserve(ready, service)
            return finish + self._tma_latency
        if kind == "cp_async":
            service = instr.bytes_moved / self._global_bytes_per_cycle
            finish = self.resources["lsu"].reserve(ready, service)
            return finish + self._cp_async_latency
        if kind in ("ld_global", "st_global"):
            service = instr.bytes_moved / self._global_bytes_per_cycle
            finish = self.resources["lsu"].reserve(ready, service)
            return finish + self._global_latency
        if kind in ("wgmma", "mma_sync"):
            service = instr.flops / self._tensor_flops_per_cycle
            return self.resources["tensor"].reserve(ready, service)
        if kind == "simt":
            service = instr.flops / self._simt_flops_per_cycle
            return self.resources["simt"].reserve(ready, service)
        if kind == "sfu":
            service = instr.sfu_ops / self._sfu_ops_per_cycle
            return self.resources["sfu"].reserve(ready, service)
        if kind == "smem_copy":
            service = instr.bytes_moved / self._smem_bytes_per_cycle
            return self.resources["smem"].reserve(ready, service)
        if kind == "nop":
            return ready
        raise SimulationError(f"no completion model for kind {kind!r}")

    def busy_times(self) -> Dict[str, float]:
        return {name: res.busy for name, res in self.resources.items()}
