"""Resource servers for the CTA-level discrete-event simulation.

Each SM resource (TMA engine, Tensor Core pipeline, SIMT lanes, SFU,
shared-memory bandwidth) is modeled as a serial server with a service
time per request. Requests reserve the server no earlier than their
ready time; the server processes them in reservation order. Busy time is
tracked per resource so the whole-GPU model can apply multi-CTA
contention and roofline corrections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError
from repro.gpusim.roofline import roofline
from repro.machine.machine import MachineModel


@dataclass
class Resource:
    """A serial server with FIFO reservations."""

    name: str
    next_free: float = 0.0
    busy: float = 0.0

    def reserve(self, ready: float, service: float) -> float:
        """Reserve the resource at or after ``ready``; returns finish."""
        if service < 0:
            raise SimulationError(
                f"negative service time on {self.name}: {service}"
            )
        start = max(ready, self.next_free)
        finish = start + service
        self.next_free = finish
        self.busy += service
        return finish


class ResourcePool:
    """The per-SM resources one CTA contends for, plus service models."""

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.resources: Dict[str, Resource] = {
            name: Resource(name)
            for name in ("tma", "tensor", "simt", "sfu", "smem", "lsu")
        }
        # All service rates come from the shared roofline derivation so
        # the analytic cost model and the simulator agree on the
        # hardware's capabilities (repro.gpusim.roofline). strict=False:
        # the CTA-level engine never touches the HBM roof, so machines
        # without that spec keep working (historical tolerance).
        roof = roofline(machine, strict=False)
        self._tensor_flops_per_cycle = roof.tensor_flops_per_cycle
        self._simt_flops_per_cycle = roof.simt_flops_per_cycle
        self._sfu_ops_per_cycle = roof.sfu_ops_per_cycle
        self._smem_bytes_per_cycle = roof.smem_bytes_per_cycle
        # Per-SM copy throughput rides the L2: tile loads mostly hit in
        # L2 thanks to inter-CTA reuse (row/column panels shared across
        # a wave). Compulsory DRAM traffic is bounded separately by the
        # whole-device HBM roofline in the GPU model.
        self._global_bytes_per_cycle = roof.global_bytes_per_cycle
        self._global_latency = roof.global_latency_cycles
        self._tma_latency = roof.tma_latency_cycles
        self._tma_issue = roof.tma_issue_cycles
        self._cp_async_latency = roof.cp_async_latency_cycles
        self._cp_async_issue_per_16b = roof.cp_async_issue_cycles_per_16b
        self.has_tma = roof.has_tma

    # ------------------------------------------------------------------
    # Service/issue models per instruction kind
    # ------------------------------------------------------------------
    def issue_cycles(self, kind: str, bytes_moved: int) -> float:
        """Cycles the issuing warp is occupied by this instruction."""
        if kind in ("tma_load", "tma_store"):
            return self._tma_issue
        if kind == "cp_async":
            # cp.async occupies the issuing threads per 16B transaction —
            # the cost Triton pays for not using the TMA.
            return (
                max(1, bytes_moved // 16) * self._cp_async_issue_per_16b / 32.0
            )
        if kind in ("wgmma", "mma_sync"):
            return 8.0
        if kind == "nop":
            return 0.0
        return 4.0

    def completion(self, kind: str, ready: float, instr) -> float:
        """Reserve the servicing resource; return the completion time."""
        if kind in ("tma_load", "tma_store"):
            service = instr.bytes_moved / self._global_bytes_per_cycle
            finish = self.resources["tma"].reserve(ready, service)
            return finish + self._tma_latency
        if kind == "cp_async":
            service = instr.bytes_moved / self._global_bytes_per_cycle
            finish = self.resources["lsu"].reserve(ready, service)
            return finish + self._cp_async_latency
        if kind in ("ld_global", "st_global"):
            service = instr.bytes_moved / self._global_bytes_per_cycle
            finish = self.resources["lsu"].reserve(ready, service)
            return finish + self._global_latency
        if kind in ("wgmma", "mma_sync"):
            service = instr.flops / self._tensor_flops_per_cycle
            return self.resources["tensor"].reserve(ready, service)
        if kind == "simt":
            service = instr.flops / self._simt_flops_per_cycle
            return self.resources["simt"].reserve(ready, service)
        if kind == "sfu":
            service = instr.sfu_ops / self._sfu_ops_per_cycle
            return self.resources["sfu"].reserve(ready, service)
        if kind == "smem_copy":
            service = instr.bytes_moved / self._smem_bytes_per_cycle
            return self.resources["smem"].reserve(ready, service)
        if kind == "nop":
            return ready
        raise SimulationError(f"no completion model for kind {kind!r}")

    def busy_times(self) -> Dict[str, float]:
        return {name: res.busy for name, res in self.resources.items()}
