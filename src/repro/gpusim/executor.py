"""CTA-level schedule execution.

Simulates one thread block's instruction streams: the DMA warp's stream
and one stream per compute warpgroup. Streams issue in order; an
instruction starts once its stream reaches it *and* its dependence
events have completed (the explicit-waits of warp-specialized code).
Asynchronous instructions occupy the stream only for their issue cost,
so a DMA warp can run ``PIPE`` iterations ahead, bounded exactly by the
backward write-after-read edges the pipelining pass recorded.

For single-stream (non-warp-specialized) schedules, copies inside a
pipelined loop are issued ``pipeline - 1`` iterations early, modeling
the unrolled multistage prefetch of Ampere-style kernels (Figure 1a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.gpusim.engine import ResourcePool
from repro.gpusim.kernel import Instr, KernelSchedule, Segment
from repro.machine.machine import MachineModel


@dataclass
class CtaResult:
    """Timing of one simulated CTA."""

    cycles: float
    busy: Dict[str, float]
    stream_cycles: Dict[str, float]
    dynamic_instructions: int

    def utilization(self, resource: str) -> float:
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.busy.get(resource, 0.0) / self.cycles)


@dataclass
class _Item:
    """One dynamic instruction instance on a stream."""

    instr: Instr
    iteration: int
    segment: int


def simulate_cta(
    schedule: KernelSchedule, machine: MachineModel
) -> CtaResult:
    """Simulate one CTA of ``schedule`` on ``machine``."""
    pool = ResourcePool(machine)
    streams = _build_streams(schedule)
    completion: Dict[Tuple[int, int, int], float] = {}
    counts: Dict[Tuple[int, int, int], int] = {}
    expected = _expected_instances(streams)
    stream_time: Dict[str, float] = {name: 0.0 for name in streams}
    cursor: Dict[str, int] = {name: 0 for name in streams}
    dynamic = sum(len(items) for items in streams.values())

    # Event-driven issue: among all stream heads whose dependencies are
    # met, process the one with the earliest feasible start time. This
    # keeps resource reservations close to time order (hardware FIFOs
    # serve requests as they arrive, not in an arbitrary stream order).
    remaining = dynamic
    while remaining:
        best_name = None
        best_start = None
        best_ready = 0.0
        for name, items in streams.items():
            idx = cursor[name]
            if idx >= len(items):
                continue
            item = items[idx]
            ready = _deps_ready(item, completion, counts, expected, schedule)
            if ready is None:
                continue
            start = max(stream_time[name], ready)
            if best_start is None or start < best_start:
                best_name, best_start, best_ready = name, start, ready
        if best_name is None:
            raise SimulationError(
                "schedule deadlocked: circular dependence between "
                "instruction streams"
            )
        name = best_name
        item = streams[name][cursor[name]]
        start = best_start
        issue = pool.issue_cycles(item.instr.kind, item.instr.bytes_moved)
        finish = pool.completion(item.instr.kind, start + issue, item.instr)
        blocking = item.instr.kind in ("simt", "sfu", "smem_copy",
                                       "ld_global", "st_global")
        stream_time[name] = finish if blocking else start + issue
        key = (item.segment, item.iteration, item.instr.uid)
        completion[key] = max(completion.get(key, 0.0), finish)
        counts[key] = counts.get(key, 0) + 1
        cursor[name] = cursor[name] + 1
        remaining -= 1

    cycles = max(
        list(stream_time.values())
        + [t for t in completion.values()]
        + [0.0]
    )
    return CtaResult(
        cycles=cycles,
        busy=pool.busy_times(),
        stream_cycles=dict(stream_time),
        dynamic_instructions=dynamic,
    )


# ----------------------------------------------------------------------
# Stream construction
# ----------------------------------------------------------------------
def _build_streams(schedule: KernelSchedule) -> Dict[str, List[_Item]]:
    names = [f"wg{i}" for i in range(schedule.n_warpgroups)]
    if schedule.warpspecialized:
        names.append("dma")
    streams: Dict[str, List[_Item]] = {name: [] for name in names}

    for seg_idx, segment in enumerate(schedule.segments):
        if schedule.warpspecialized:
            _emit_warpspec(streams, schedule, seg_idx, segment)
        else:
            _emit_single(streams, schedule, seg_idx, segment)
    return streams


def _emit_warpspec(
    streams: Dict[str, List[_Item]],
    schedule: KernelSchedule,
    seg_idx: int,
    segment: Segment,
) -> None:
    for k in range(segment.extent):
        for instr in segment.instrs:
            if instr.role == "dma":
                streams["dma"].append(_Item(instr, k, seg_idx))
            else:
                for wg in range(schedule.n_warpgroups):
                    streams[f"wg{wg}"].append(
                        _Item(_per_wg(instr, schedule), k, seg_idx)
                    )


def _emit_single(
    streams: Dict[str, List[_Item]],
    schedule: KernelSchedule,
    seg_idx: int,
    segment: Segment,
) -> None:
    """Single-stream emission with multistage prefetch reordering.

    Copies that depend on same-iteration compute results (like the
    serialized B2 load of the modeled Triton Dual-GEMM) cannot be
    prefetched; they stay in program position.
    """
    prefetch = segment.pipeline - 1 if segment.is_loop else 0
    copies = [
        i for i in segment.instrs if i.role == "dma" and not i.deps
    ]
    compute = [i for i in segment.instrs if i not in copies]
    schedule_rows: List[Tuple[Instr, int]] = []
    if prefetch > 0:
        for k in range(min(prefetch, segment.extent)):
            for instr in copies:
                schedule_rows.append((instr, k))
        for k in range(segment.extent):
            fetch_iter = k + prefetch
            if fetch_iter < segment.extent:
                for instr in copies:
                    schedule_rows.append((instr, fetch_iter))
            for instr in compute:
                schedule_rows.append((instr, k))
    else:
        for k in range(segment.extent):
            for instr in segment.instrs:
                schedule_rows.append((instr, k))
    for instr, k in schedule_rows:
        for wg in range(schedule.n_warpgroups):
            copy_like = instr.role == "dma"
            item_instr = instr if copy_like and wg == 0 else _per_wg(
                instr, schedule
            )
            if copy_like and wg != 0:
                continue  # a single warp issues each block-wide copy
            streams[f"wg{wg}"].append(_Item(item_instr, k, seg_idx))


def _per_wg(instr: Instr, schedule: KernelSchedule) -> Instr:
    """A compute instruction's per-warpgroup share.

    Work annotated on the instruction covers all warpgroups; each
    stream executes 1/Nth of it. The shared variant is cached on the
    instruction so repeated loop iterations reuse one object.
    """
    n = schedule.n_warpgroups
    if n == 1:
        return instr
    cached = getattr(instr, "_per_wg_variant", None)
    if cached is not None:
        return cached
    variant = Instr(
        uid=instr.uid,
        kind=instr.kind,
        role=instr.role,
        bytes_moved=instr.bytes_moved // n,
        flops=instr.flops / n,
        sfu_ops=instr.sfu_ops / n,
        deps=instr.deps,
        carried_deps=instr.carried_deps,
        war_distance=instr.war_distance,
        war_consumers=instr.war_consumers,
        label=instr.label,
    )
    instr._per_wg_variant = variant
    return variant


# ----------------------------------------------------------------------
# Dependence resolution
# ----------------------------------------------------------------------
def _expected_instances(
    streams: Dict[str, List[_Item]]
) -> Dict[Tuple[int, int, int], int]:
    """How many stream instances each dynamic instruction has.

    A compute instruction replicated across N warpgroups only counts as
    complete once all N instances finish (the warpgroup barrier).
    """
    expected: Dict[Tuple[int, int, int], int] = {}
    for items in streams.values():
        for item in items:
            key = (item.segment, item.iteration, item.instr.uid)
            expected[key] = expected.get(key, 0) + 1
    return expected


def _deps_ready(
    item: _Item,
    completion: Dict[Tuple[int, int, int], float],
    counts: Dict[Tuple[int, int, int], int],
    expected: Dict[Tuple[int, int, int], int],
    schedule: KernelSchedule,
):
    """Latest completion among the item's dependencies, or None if some
    dependency has not fully completed yet."""
    ready = 0.0
    instr = item.instr

    def dep_time(segment: int, iteration: int, uid: int):
        return _lookup(
            completion, counts, expected, schedule, segment, iteration, uid
        )

    for dep in instr.deps:
        time = dep_time(item.segment, item.iteration, dep)
        if time is None:
            return None
        ready = max(ready, time)
    for dep, distance in instr.carried_deps:
        target = item.iteration - distance
        if target < 0:
            continue
        time = dep_time(item.segment, target, dep)
        if time is None:
            return None
        ready = max(ready, time)
    if instr.war_distance > 0:
        target = item.iteration - instr.war_distance
        if target >= 0:
            for consumer in instr.war_consumers:
                time = dep_time(item.segment, target, consumer)
                if time is None:
                    return None
                ready = max(ready, time)
    return ready


def _lookup(
    completion: Dict[Tuple[int, int, int], float],
    counts: Dict[Tuple[int, int, int], int],
    expected: Dict[Tuple[int, int, int], int],
    schedule: KernelSchedule,
    segment: int,
    iteration: int,
    uid: int,
):
    """Find a dependency's completion, searching earlier segments too."""
    key = (segment, iteration, uid)
    if key in expected:
        if counts.get(key, 0) < expected[key]:
            return None
        return completion[key]
    # The producer lives in another segment (loop-external dependence):
    # it completes once, at its own final instance.
    for seg_idx, seg in enumerate(schedule.segments):
        if seg_idx == segment:
            continue
        if any(i.uid == uid for i in seg.instrs):
            return _lookup(
                completion, counts, expected, schedule,
                seg_idx, seg.extent - 1, uid,
            )
    raise SimulationError(f"instruction depends on unknown uid {uid}")
